// Event hooks (paper §IV-D): user-specified callbacks invoked by graph
// executors and training runners at well-defined points, enabling
// fine-grained measurement and early exits. A metric class may extend both
// TestMetric and Event to benchmark a hook-delimited region.
#pragma once

#include <cstdint>
#include <string>

namespace d500 {

/// Points in execution where events fire.
enum class EventPoint {
  kBeforeInference,
  kAfterInference,
  kBeforeBackprop,
  kAfterBackprop,
  kBeforeOperator,   // payload: operator name
  kAfterOperator,
  kBeforeTrainingStep,
  kAfterTrainingStep,
  kBeforeEpoch,
  kAfterEpoch,
  kBeforeTestSet,
  kAfterTestSet,
};

/// Context handed to event hooks.
struct EventInfo {
  EventPoint point;
  std::int64_t step = -1;    // training step or operator index, if applicable
  std::int64_t epoch = -1;   // epoch number, if applicable
  std::string label;         // operator name / phase label
  double scalar = 0.0;       // point-specific payload (e.g. loss value)
};

/// Base class for event hooks.
class Event {
 public:
  virtual ~Event() = default;

  /// Called at each event point the host object supports. Returning false
  /// from a kAfter* point requests early termination of the enclosing loop
  /// (the paper's early-stopping example).
  virtual bool on_event(const EventInfo& info) = 0;
};

}  // namespace d500
