// Event hooks (paper §IV-D): user-specified callbacks invoked by graph
// executors and training runners at well-defined points, enabling
// fine-grained measurement and early exits. A metric class may extend both
// TestMetric and Event to benchmark a hook-delimited region.
#pragma once

#include <cstdint>
#include <string>

namespace d500 {

/// Points in execution where events fire.
enum class EventPoint {
  kBeforeInference,
  kAfterInference,
  kBeforeBackprop,
  kAfterBackprop,
  kBeforeOperator,   // payload: operator name
  kAfterOperator,
  kBeforeTrainingStep,
  kAfterTrainingStep,
  kBeforeEpoch,
  kAfterEpoch,
  kBeforeTestSet,
  kAfterTestSet,
};

/// Context handed to event hooks.
struct EventInfo {
  EventPoint point;
  std::int64_t step = -1;    // training step or operator index, if applicable
  std::int64_t epoch = -1;   // epoch number, if applicable
  std::string label;         // operator name / phase label
  double scalar = 0.0;       // point-specific payload (e.g. loss value)
};

/// Base class for event hooks.
///
/// Threading contract (all host objects — executors and runners — honor
/// it):
///  - Dispatch is serialized: at most one on_event() call is in flight per
///    host at any time, so hooks may mutate their own state without
///    locking against other hooks on the same host.
///  - Dispatch may happen on any thread. Parallel executors fire operator
///    events from pool worker threads; hooks must not assume they run on
///    the thread that called inference()/run().
///  - Operator pairs may interleave: with a parallel executor,
///    kBeforeOperator of one operator can arrive between the kBefore/
///    kAfter pair of another. Correlate pairs with EventInfo::step (the
///    operator index), not with "the last before event".
///  - Hooks run inside the host's dispatch lock; an on_event() that calls
///    back into the same host (another inference, add_event) deadlocks.
class Event {
 public:
  virtual ~Event() = default;

  /// Called at each event point the host object supports. Returning false
  /// from a kAfter* point requests early termination of the enclosing loop
  /// (the paper's early-stopping example).
  virtual bool on_event(const EventInfo& info) = 0;
};

}  // namespace d500
