// Minimal binary serialization used by the model format (graph/model.hpp)
// and the dataset containers (data/container.hpp). Little-endian,
// length-prefixed; varint encoding for the entropy coder lives here too.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace d500 {

/// Append-only binary writer over an owned byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  /// LEB128-style unsigned varint.
  void varint(std::uint64_t v);
  void str(const std::string& s);
  void bytes(std::span<const std::uint8_t> data);
  void raw(const void* data, std::size_t n);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked binary reader over an unowned byte span. Throws
/// FormatError on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();
  std::uint64_t varint();
  std::string str();
  std::vector<std::uint8_t> bytes();
  void raw(void* out, std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Whole-file helpers.
void write_file(const std::string& path, std::span<const std::uint8_t> data);
std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace d500
