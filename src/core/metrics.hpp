// The TestMetric interface and the metric library shared by all levels
// (paper §IV-B "Metrics" and the per-level metric families in Fig. 3).
//
// A TestMetric states how many re-runs a measurement needs (for numerical
// stability), observes begin/end around the measured region plus an optional
// value payload, and produces both a numeric summary and a human-readable
// report. Metrics double as Event hooks (see event.hpp): a class may extend
// both, exactly as the paper describes for benchmarking events.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/event.hpp"
#include "core/stats.hpp"
#include "core/timer.hpp"

namespace d500 {

/// Base interface for all metrics (paper: `TestMetric`).
class TestMetric {
 public:
  virtual ~TestMetric() = default;

  /// Name used in reports, e.g. "wallclock_ms".
  virtual std::string name() const = 0;

  /// Number of repetitions the measurement should run to be considered
  /// numerically stable (paper: "number of re-runs needed"). Default 1;
  /// timing metrics typically want 30 per the paper's methodology.
  virtual int reruns() const { return 1; }

  /// Called immediately before / after the measured region of one run.
  virtual void begin() {}
  virtual void end() {}

  /// Offers a data payload to the metric (accuracy metrics compare the
  /// produced values against a reference supplied at construction).
  virtual void observe(std::span<const float> /*values*/) {}

  /// Scalar summary of everything measured so far (e.g. median time,
  /// L2 norm). Meaning is metric-specific.
  virtual double summary() const = 0;

  /// Multi-line human-readable report ("generate a selected result").
  virtual std::string report() const;
};

/// Median wall-clock time over repeated begin()/end() pairs, in seconds.
class WallclockMetric : public TestMetric {
 public:
  explicit WallclockMetric(int reruns = 30) : reruns_(reruns) {}
  std::string name() const override { return "wallclock_s"; }
  int reruns() const override { return reruns_; }
  void begin() override { timer_.reset(); }
  void end() override { samples_.push_back(timer_.seconds()); }
  double summary() const override;
  std::string report() const override;
  const std::vector<double>& samples() const { return samples_; }
  SampleSummary stats() const { return summarize(samples_); }

 private:
  int reruns_;
  Timer timer_;
  std::vector<double> samples_;
};

/// Throughput in FLOP/s: caller supplies the analytic FLOP count of the
/// measured region (kernels report theirs via ops/flops.hpp).
class FlopsMetric : public TestMetric {
 public:
  explicit FlopsMetric(std::uint64_t flops_per_run, int reruns = 30)
      : flops_(flops_per_run), wallclock_(reruns) {}
  std::string name() const override { return "gflops"; }
  int reruns() const override { return wallclock_.reruns(); }
  void begin() override { wallclock_.begin(); }
  void end() override { wallclock_.end(); }
  double summary() const override;  // GFLOP/s at median time
  std::string report() const override;

 private:
  std::uint64_t flops_;
  WallclockMetric wallclock_;
};

/// Which vector norm an accuracy metric computes.
enum class NormKind { kL1, kL2, kLInf };

/// Norm of the difference between observed values and a fixed reference
/// (paper: accuracy-per-operator via l1/l2/linf norms).
class NormMetric : public TestMetric {
 public:
  NormMetric(std::vector<float> reference, NormKind kind)
      : reference_(std::move(reference)), kind_(kind) {}
  std::string name() const override;
  void observe(std::span<const float> values) override;
  double summary() const override;  // last observed norm
  std::string report() const override;
  const std::vector<double>& history() const { return norms_; }

 private:
  std::vector<float> reference_;
  NormKind kind_;
  std::vector<double> norms_;
};

/// Maximum absolute error vs. a reference, across all observations.
class MaxErrorMetric : public TestMetric {
 public:
  explicit MaxErrorMetric(std::vector<float> reference)
      : reference_(std::move(reference)) {}
  std::string name() const override { return "max_error"; }
  void observe(std::span<const float> values) override;
  double summary() const override { return max_error_; }

 private:
  std::vector<float> reference_;
  double max_error_ = 0.0;
};

/// Per-element variance across repeated observations (paper: repeatability
/// via a map of output variance). summary() is the mean variance; the full
/// variance map is available for heatmap rendering.
class VarianceMetric : public TestMetric {
 public:
  std::string name() const override { return "output_variance"; }
  void observe(std::span<const float> values) override;
  double summary() const override;
  std::vector<double> variance_map() const;
  std::size_t observations() const { return count_; }

 private:
  std::size_t count_ = 0;
  std::vector<double> mean_;
  std::vector<double> m2_;  // Welford accumulators
};

/// 2-D heatmap of absolute error vs. a reference, downsampled to a fixed
/// grid; render() returns an ASCII intensity map (paper: heatmaps that
/// highlight regions of interest).
class HeatmapMetric : public TestMetric {
 public:
  HeatmapMetric(std::vector<float> reference, int rows, int cols);
  std::string name() const override { return "error_heatmap"; }
  void observe(std::span<const float> values) override;
  double summary() const override;  // peak cell intensity
  std::string report() const override { return render(); }
  std::string render() const;
  const std::vector<double>& cells() const { return cells_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

 private:
  std::vector<float> reference_;
  int rows_, cols_;
  std::vector<double> cells_;
};

/// Per-operator wallclock timeline, fed by executor operator events — the
/// paper's "metric class may extend both TestMetric and Event" example.
/// Attach with executor.add_event(metric); each kBefore/kAfterOperator pair
/// contributes one sample to that operator's total. Pairs are correlated by
/// operator index (EventInfo::step), so interleaved dispatch from a
/// parallel executor is attributed correctly; dispatch is serialized by the
/// host (see core/event.hpp), and the internal mutex additionally allows
/// one metric to observe several executors.
class TimelineMetric : public TestMetric, public Event {
 public:
  std::string name() const override { return "op_timeline"; }

  bool on_event(const EventInfo& info) override;

  /// Total seconds across all completed operator invocations.
  double summary() const override;

  /// Hot-op table: per-operator calls and total time, sorted by total time
  /// descending.
  std::string report() const override;

  struct OpStat {
    std::int64_t calls = 0;
    double seconds = 0.0;
  };
  /// Per-operator aggregates keyed by operator name.
  std::map<std::string, OpStat> op_stats() const;

 private:
  mutable std::mutex mu_;
  // Open spans keyed by (operator index, name): a before event arms the
  // timestamp, the matching after event closes it.
  std::map<std::pair<std::int64_t, std::string>, double> open_;
  std::map<std::string, OpStat> ops_;
  Timer clock_;  // one time base for all begin/end stamps
};

/// Runs `fn` under a metric honoring its reruns() count; convenience used by
/// the validation helpers.
template <typename Fn>
void measure(TestMetric& metric, Fn&& fn) {
  for (int i = 0; i < metric.reruns(); ++i) {
    metric.begin();
    fn();
    metric.end();
  }
}

}  // namespace d500
