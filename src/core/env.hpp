// Benchmark sizing knobs. Every bench binary runs with no arguments; the
// environment selects problem scale so the whole suite stays runnable on a
// single CPU core:
//   D500_FAST=1  — CI-sized problems (seconds total)
//   default      — paper-shaped problems scaled to CPU (tens of seconds)
//   D500_FULL=1  — closest to paper sizes (minutes)
#pragma once

#include <cstdint>
#include <string>

namespace d500 {

enum class BenchScale { kFast, kDefault, kFull };

/// Reads D500_FAST / D500_FULL once; kDefault otherwise.
BenchScale bench_scale();

/// Scale-dependent pick helper.
template <typename T>
T scale_pick(T fast, T def, T full) {
  switch (bench_scale()) {
    case BenchScale::kFast: return fast;
    case BenchScale::kFull: return full;
    default: return def;
  }
}

/// Global benchmark seed: D500_SEED env var or the fixed default, so every
/// run prints and honors an explicit seed (reproducibility pillar).
std::uint64_t bench_seed();

/// Scratch directory for dataset containers and JIT artifacts
/// (D500_TMPDIR, default /tmp/d500).
std::string scratch_dir();

}  // namespace d500
