// Benchmark sizing knobs. Every bench binary runs with no arguments; the
// environment selects problem scale so the whole suite stays runnable on a
// single CPU core:
//   D500_FAST=1  — CI-sized problems (seconds total)
//   default      — paper-shaped problems scaled to CPU (tens of seconds)
//   D500_FULL=1  — closest to paper sizes (minutes)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace d500 {

enum class BenchScale { kFast, kDefault, kFull };

/// Reads D500_FAST / D500_FULL once; kDefault otherwise.
BenchScale bench_scale();

/// Scale-dependent pick helper.
template <typename T>
T scale_pick(T fast, T def, T full) {
  switch (bench_scale()) {
    case BenchScale::kFast: return fast;
    case BenchScale::kFull: return full;
    default: return def;
  }
}

/// Global benchmark seed: D500_SEED env var or the fixed default, so every
/// run prints and honors an explicit seed (reproducibility pillar).
std::uint64_t bench_seed();

/// Scratch directory for dataset containers and JIT artifacts
/// (D500_TMPDIR, default /tmp/d500).
std::string scratch_dir();

/// Chrome-trace output path (D500_TRACE). Empty means tracing stays off
/// unless enabled programmatically (core/trace).
std::string trace_path();

/// Allocator mode string (D500_ARENA): "arena" (default, recycling free
/// lists) or "malloc" (aligned allocate/free per call). Parsed by
/// core/arena; any other value falls back to "arena".
std::string arena_mode_setting();

/// Per-thread trace ring capacity in records (D500_TRACE_BUFSZ, default
/// 65536; core/trace rounds up to a power of two).
std::size_t trace_buffer_records();

/// Kernel dispatch mode string (D500_KERNEL): "auto" (default; SIMD when
/// compiled in), "scalar" (force the one-lane instantiation of every
/// kernel), or "simd". Parsed once by core/simd; any other value falls
/// back to "auto".
std::string kernel_dispatch_setting();

/// Default GEMM backend string (D500_GEMM): "packed" (default), "blocked",
/// or "naive". Used where no explicit backend attribute is given (graph
/// import, op defaults). Parsed by ops/gemm; unknown values fall back to
/// "packed".
std::string gemm_backend_setting();

/// GEMM epilogue mode string (D500_GEMM_EPILOGUE): "fused" (default —
/// bias/activation-chain epilogues apply in registers at microkernel tile
/// store time) or "post" (the pre-fusion two-pass path: GEMM, then
/// separate sweeps over C; kept as the differential oracle). Parsed once
/// by ops/gemm; set_gemm_epilogue_mode overrides it programmatically.
std::string gemm_epilogue_setting();

/// Communication/compute overlap default (D500_OVERLAP): when set (and not
/// "0"), distributed optimizers launch bucketed nonblocking allreduces
/// during backprop instead of blocking ring allreduces after it. Read
/// fresh on every call (tests and benches flip it mid-process).
bool overlap_comm_setting();

/// Plan-time graph pass selection (D500_PASSES, default "all"): a spec
/// string parsed by graph/passes — "all"/"none", a comma list of pass
/// names, or "-name" exclusions. Read fresh on every call (tests and the
/// ci-passes-off preset flip it per-process).
std::string passes_setting();

/// Gradient bucket size cap in bytes (D500_BUCKET_KB, default 1024 KiB).
/// A bucket always holds at least one gradient tensor, so a cap smaller
/// than the largest tensor degenerates to one bucket per tensor. Read
/// fresh on every call.
std::size_t bucket_cap_bytes();

/// Metrics registry master switch (D500_METRICS, default on): "0"/"off"
/// disable counter/gauge/histogram emission process-wide. Resolved once by
/// core/metrics_registry's gate; MetricsRegistry::enable()/disable()
/// override it programmatically.
bool metrics_setting();

/// Hardware-counter profiling mode (D500_PERF): "auto" (default — try
/// perf_event_open, fall back to rusage/clock) or "off" (never attempt the
/// syscall). Read fresh on every call (tests flip it per-process).
std::string perf_setting();

// Inference-serving knobs (src/serve). All read fresh on every call: tests
// and the serving bench flip policies per-process.

/// Dynamic-batching cap (D500_SERVE_MAX_BATCH, default 32): the most
/// single-sample requests one launch may coalesce. Clamped by the session's
/// largest plan bucket.
std::int64_t serve_max_batch();

/// Batching deadline in microseconds (D500_SERVE_DEADLINE_US, default
/// 2000): a queued request never waits longer than this for its batch to
/// fill before the deadline/adaptive policies launch early.
std::int64_t serve_deadline_us();

/// Session count (D500_SERVE_SESSIONS, default 2): how many
/// InferenceSessions a SessionPool runs concurrently.
int serve_sessions_setting();

/// Batching policy string (D500_SERVE_POLICY, default "adaptive"):
/// "none" | "fixed" | "deadline" | "adaptive" (serve/pool parses it;
/// unknown values fall back to "adaptive").
std::string serve_policy_setting();

/// Plan-cache bucket list (D500_SERVE_BUCKETS, default "1,2,4,8,16,32"):
/// comma-separated batch sizes the session precompiles plans for; requests
/// pad up to the nearest bucket (serve/session parses it).
std::string serve_buckets_setting();

// Fault-injection knobs (src/dist/fault). D500_FAULTS is the master
// switch: when it is unset, every D500_FAULT_* knob must also be unset —
// faults_enabled_setting() D500_CHECKs this so a schedule knob without the
// master switch fails loudly instead of silently running fault-free. All
// read fresh on every call (tests flip them per-process).

/// Fault-injection master switch (D500_FAULTS): unset/"0" off, anything
/// else on. With it on, every SimMpi world attaches a FaultInjector built
/// from the D500_FAULT_* env schedule below.
bool faults_enabled_setting();

/// Deterministic fault-schedule seed (D500_FAULT_SEED, default 0): drives
/// the per-message drop and per-round lateness hashes.
std::uint64_t fault_seed_setting();

/// Per-delivery-attempt drop probability (D500_FAULT_DROP, default 0).
/// Each dropped attempt costs wire bytes and one virtual retry timeout;
/// a message undeliverable after the retry bound throws.
double fault_drop_setting();

/// Bounded-retry limit for dropped point-to-point messages
/// (D500_FAULT_RETRIES, default 3 retries after the initial attempt).
int fault_retries_setting();

/// Virtual retry-timeout charged per failed delivery attempt, in
/// microseconds (D500_FAULT_TIMEOUT_US, default 50).
std::int64_t fault_timeout_us_setting();

/// Straggler schedule: rank slowed (D500_FAULT_SLOW_RANK, default -1 =
/// none) and the real per-send delay applied to it in microseconds
/// (D500_FAULT_SLOW_US, default 200).
int fault_slow_rank_setting();
std::int64_t fault_slow_us_setting();

/// Per-(rank, round) probability that a rank's contribution to an eager
/// collective is late (D500_FAULT_LATE, default 0) — peers proceed with
/// its previous-round value, bounded by D500_STALENESS.
double fault_late_setting();

/// Staleness bound for the partially-asynchronous paths (D500_STALENESS,
/// default 1): the most consecutive rounds an eager collective may
/// substitute a rank's stale contribution, and the parameter-server
/// optimizer's clock-gap bound. 0 degenerates to fully synchronous.
std::int64_t staleness_setting();

}  // namespace d500
