#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>

#include "core/env.hpp"
#include "core/json.hpp"
#include "core/metrics_registry.hpp"
#include "core/table.hpp"
#include "core/threadpool.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <unistd.h>
extern char** environ;
#endif

namespace d500 {

namespace {

constexpr int kSchemaVersion = 1;

/// Runs `cmd` with stderr silenced and returns its first output line.
std::string run_line(const std::string& cmd) {
#if defined(__linux__) || defined(__APPLE__)
  FILE* p = popen((cmd + " 2>/dev/null").c_str(), "r");
  if (p == nullptr) return {};
  char buf[256] = {};
  std::string out;
  if (std::fgets(buf, sizeof(buf), p) != nullptr) out = buf;
  pclose(p);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  return out;
#else
  (void)cmd;
  return {};
#endif
}

std::string read_hostname() {
#if defined(__linux__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0) return buf;
#endif
  return "unknown";
}

/// Parses /proc/cpuinfo for the model name, logical CPU count, and the
/// ISA flags the kernels care about.
void read_cpuinfo(std::string* model, int* logical,
                  std::vector<std::string>* flags) {
  std::ifstream in("/proc/cpuinfo");
  if (!in) return;
  static const char* kInteresting[] = {"sse2", "avx",     "avx2", "fma",
                                       "avx512f", "avx512bw", "neon"};
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    while (!key.empty() && (key.back() == ' ' || key.back() == '\t'))
      key.pop_back();
    std::string val = line.substr(colon + 1);
    if (!val.empty() && val.front() == ' ') val.erase(0, 1);
    if (key == "model name" && model->empty()) *model = val;
    if (key == "processor") ++*logical;
    if ((key == "flags" || key == "Features") && flags->empty()) {
      std::istringstream fs(val);
      std::string f;
      while (fs >> f)
        for (const char* want : kInteresting)
          if (f == want) flags->push_back(f);
    }
  }
}

std::string utc_timestamp() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
#if defined(__linux__) || defined(__APPLE__)
  gmtime_r(&t, &tm);
#else
  tm = *std::gmtime(&t);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

const char* better_name(Better b) {
  switch (b) {
    case Better::kLower: return "lower";
    case Better::kHigher: return "higher";
    default: return "none";
  }
}

Better better_from(const std::string& s) {
  if (s == "lower") return Better::kLower;
  if (s == "higher") return Better::kHigher;
  return Better::kNone;
}

void write_summary_fields(JsonWriter& w, const SampleSummary& s) {
  w.kv("n", static_cast<std::uint64_t>(s.n));
  w.kv("min", s.min);
  w.kv("max", s.max);
  w.kv("mean", s.mean);
  w.kv("median", s.median);
  w.kv("stddev", s.stddev);
  w.kv("p25", s.p25);
  w.kv("p75", s.p75);
  w.kv("ci95_lo", s.ci95_lo);
  w.kv("ci95_hi", s.ci95_hi);
}

SampleSummary summary_from_json(const Json& m) {
  SampleSummary s;
  s.n = static_cast<std::size_t>(m.num_or("n", 0.0));
  s.min = m.num_or("min", 0.0);
  s.max = m.num_or("max", 0.0);
  s.mean = m.num_or("mean", 0.0);
  s.median = m.num_or("median", 0.0);
  s.stddev = m.num_or("stddev", 0.0);
  s.p25 = m.num_or("p25", 0.0);
  s.p75 = m.num_or("p75", 0.0);
  s.ci95_lo = m.num_or("ci95_lo", 0.0);
  s.ci95_hi = m.num_or("ci95_hi", 0.0);
  return s;
}

std::string rel_change_str(double old_v, double new_v) {
  if (old_v == 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (new_v - old_v) / old_v * 100.0);
  return buf;
}

}  // namespace

const Provenance& Provenance::collect() {
  static const Provenance p = [] {
    Provenance pr;
    pr.git_sha = run_line("git rev-parse HEAD");
    if (pr.git_sha.empty()) pr.git_sha = "unknown";
    if (pr.git_sha != "unknown")
      pr.git_dirty = !run_line("git status --porcelain").empty();
    pr.hostname = read_hostname();
    read_cpuinfo(&pr.cpu_model, &pr.cpu_logical, &pr.cpu_flags);
    if (pr.cpu_model.empty()) pr.cpu_model = "unknown";
    pr.pool_threads = ThreadPool::instance().num_threads();
#if defined(__linux__) || defined(__APPLE__)
    for (char** e = environ; *e != nullptr; ++e) {
      const char* eq = std::strchr(*e, '=');
      if (eq == nullptr) continue;
      std::string name(*e, eq - *e);
      if (name.rfind("D500_", 0) == 0) pr.env.emplace_back(name, eq + 1);
    }
    std::sort(pr.env.begin(), pr.env.end());
#endif
    return pr;
  }();
  return p;
}

BenchReport::BenchReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchReport::add_summary(const std::string& name, const SampleSummary& s,
                              const std::string& unit, Better better) {
  Metric m;
  m.kind = Metric::Kind::kSummary;
  m.name = name;
  m.unit = unit;
  m.better = better;
  m.summary = s;
  metrics_.push_back(std::move(m));
}

void BenchReport::add_scalar(const std::string& name, double value,
                             const std::string& unit, Better better) {
  Metric m;
  m.kind = Metric::Kind::kScalar;
  m.name = name;
  m.unit = unit;
  m.better = better;
  m.value = value;
  metrics_.push_back(std::move(m));
}

void BenchReport::add_flag(const std::string& name, bool ok) {
  Metric m;
  m.kind = Metric::Kind::kFlag;
  m.name = name;
  m.flag = ok;
  metrics_.push_back(std::move(m));
}

void BenchReport::add_perf(const std::string& name, const PerfCounts& counts) {
  perf_.push_back({name, counts});
}

void BenchReport::add_runtime_metrics() {
  runtime_metrics_json_ = MetricsRegistry::instance().snapshot_json();
}

void BenchReport::set_extra_json(std::string raw_object) {
  extra_json_ = std::move(raw_object);
}

std::string BenchReport::to_json() const {
  const Provenance& pv = Provenance::collect();
  JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kSchemaVersion);
  w.kv("bench", bench_name_);
  w.kv("timestamp_utc", utc_timestamp());

  w.key("provenance");
  w.begin_object();
  w.kv("git_sha", pv.git_sha);
  w.kv("git_dirty", pv.git_dirty);
  w.kv("hostname", pv.hostname);
  w.kv("cpu_model", pv.cpu_model);
  w.kv("cpu_logical", pv.cpu_logical);
  w.key("cpu_flags");
  w.begin_array();
  for (const auto& f : pv.cpu_flags) w.value(f);
  w.end_array();
  w.kv("pool_threads", pv.pool_threads);
  w.key("env");
  w.begin_object();
  for (const auto& [k, v] : pv.env) w.kv(k, v);
  w.end_object();
  // Resolved knob values — what the run actually used, independent of
  // which env vars were set.
  w.key("config");
  w.begin_object();
  w.kv("seed", bench_seed());
  w.kv("scale", bench_scale() == BenchScale::kFast     ? "fast"
                : bench_scale() == BenchScale::kFull   ? "full"
                                                       : "default");
  w.kv("kernel", kernel_dispatch_setting());
  w.kv("gemm", gemm_backend_setting());
  w.kv("arena", arena_mode_setting());
  w.kv("passes", passes_setting());
  w.kv("overlap", overlap_comm_setting());
  w.kv("bucket_kb",
       static_cast<std::uint64_t>(bucket_cap_bytes() / 1024));
  w.kv("metrics", metrics_setting());
  w.kv("perf", perf_setting());
  w.kv("serve_policy", serve_policy_setting());
  w.kv("serve_max_batch", static_cast<std::int64_t>(serve_max_batch()));
  w.kv("serve_deadline_us", static_cast<std::int64_t>(serve_deadline_us()));
  w.kv("serve_sessions", serve_sessions_setting());
  w.kv("serve_buckets", serve_buckets_setting());
  w.end_object();
  w.end_object();  // provenance

  w.key("metrics");
  w.begin_object();
  for (const auto& m : metrics_) {
    w.key(m.name);
    w.begin_object();
    switch (m.kind) {
      case Metric::Kind::kSummary:
        w.kv("kind", "summary");
        w.kv("unit", m.unit);
        w.kv("better", better_name(m.better));
        write_summary_fields(w, m.summary);
        break;
      case Metric::Kind::kScalar:
        w.kv("kind", "scalar");
        w.kv("unit", m.unit);
        w.kv("better", better_name(m.better));
        w.kv("value", m.value);
        break;
      case Metric::Kind::kFlag:
        w.kv("kind", "flag");
        w.kv("ok", m.flag);
        break;
    }
    w.end_object();
  }
  w.end_object();

  if (!perf_.empty()) {
    w.key("hw");
    w.begin_object();
    for (const auto& e : perf_) {
      w.key(e.name);
      w.begin_object();
      w.kv("perf_available", e.counts.perf_available);
      w.kv("cycles", e.counts.cycles);
      w.kv("instructions", e.counts.instructions);
      w.kv("cache_misses", e.counts.cache_misses);
      w.kv("branch_misses", e.counts.branch_misses);
      w.kv("ipc", e.counts.ipc());
      w.kv("cache_mpki", e.counts.cache_mpki());
      w.kv("branch_mpki", e.counts.branch_mpki());
      w.kv("wall_s", e.counts.wall_s);
      w.kv("user_s", e.counts.user_s);
      w.kv("sys_s", e.counts.sys_s);
      w.kv("max_rss_kb", static_cast<std::int64_t>(e.counts.max_rss_kb));
      w.end_object();
    }
    w.end_object();
  }

  if (!runtime_metrics_json_.empty()) {
    w.key("runtime_metrics");
    w.raw(runtime_metrics_json_);
  }
  if (!extra_json_.empty()) {
    w.key("extra");
    w.raw(extra_json_);
  }
  w.end_object();
  return w.take();
}

bool BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << "\n";
  if (!out) return false;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

std::string ReportDiff::to_text() const {
  if (!comparable) return "reports not comparable: " + incomparable_reason;
  Table t({"metric", "verdict", "detail"});
  for (const auto& l : lines) t.add_row({l.name, l.verdict, l.detail});
  std::string out = t.to_text();
  char tail[96];
  std::snprintf(tail, sizeof(tail), "\n%d regression(s), %d improvement(s)\n",
                regressions, improvements);
  out += tail;
  return out;
}

ReportDiff diff_reports(const Json& old_report, const Json& new_report,
                        const ReportDiffOptions& opts) {
  ReportDiff d;
  if (!old_report.is_object() || !new_report.is_object()) {
    d.incomparable_reason = "not JSON objects";
    return d;
  }
  const double old_ver = old_report.num_or("schema_version", 0.0);
  const double new_ver = new_report.num_or("schema_version", 0.0);
  if (old_ver < 1.0 || new_ver < 1.0) {
    d.incomparable_reason = "missing schema_version";
    return d;
  }
  const std::string old_bench = old_report.str_or("bench", "");
  const std::string new_bench = new_report.str_or("bench", "");
  if (old_bench != new_bench) {
    d.incomparable_reason =
        "bench names differ: '" + old_bench + "' vs '" + new_bench + "'";
    return d;
  }
  const Json* old_m = old_report.find("metrics");
  const Json* new_m = new_report.find("metrics");
  if (old_m == nullptr || new_m == nullptr || !old_m->is_object() ||
      !new_m->is_object()) {
    d.incomparable_reason = "missing metrics object";
    return d;
  }
  d.comparable = true;

  const auto resolve_better = [&opts](const std::string& metric,
                                      Better stamped) {
    for (const auto& [name, dir] : opts.direction)
      if (name == metric) return dir;
    return stamped;
  };

  for (const auto& [name, om] : old_m->members) {
    ReportDiffLine line;
    line.name = name;
    const Json* nm = new_m->find(name);
    if (nm == nullptr) {
      line.verdict = "gone";
      line.detail = "metric absent in new report";
      d.lines.push_back(std::move(line));
      continue;
    }
    const std::string kind = om.str_or("kind", "scalar");
    if (kind != nm->str_or("kind", "scalar")) {
      line.verdict = "gone";
      line.detail = "metric kind changed";
      d.lines.push_back(std::move(line));
      continue;
    }

    if (kind == "flag") {
      const bool was_ok = om.bool_or("ok", false);
      const bool now_ok = nm->bool_or("ok", false);
      if (was_ok && !now_ok) {
        line.verdict = "REGRESSED";
        line.detail = "flag flipped true -> false";
        ++d.regressions;
      } else if (!was_ok && now_ok) {
        line.verdict = "improved";
        line.detail = "flag flipped false -> true";
        ++d.improvements;
      } else {
        line.verdict = "ok";
        line.detail = now_ok ? "true" : "false (unchanged)";
      }
    } else if (kind == "summary") {
      const SampleSummary os = summary_from_json(om);
      const SampleSummary ns = summary_from_json(*nm);
      const Better better =
          resolve_better(name, better_from(nm->str_or("better", "lower")));
      const double rel = os.median != 0.0
                             ? (ns.median - os.median) / os.median
                             : 0.0;
      const bool overlap = ci_overlap(os, ns);
      const bool worse = better == Better::kLower   ? rel > 0.0
                         : better == Better::kHigher ? rel < 0.0
                                                     : false;
      line.detail = "median " + summary_to_string(os) + " -> " +
                    summary_to_string(ns) + " (" +
                    rel_change_str(os.median, ns.median) +
                    (overlap ? ", CIs overlap)" : ", CIs disjoint)");
      // Paper §V-B: distinguishable only when the 95% CIs are disjoint;
      // rel_tol damps one-bucket flukes on very fast regions.
      if (!overlap && worse && std::fabs(rel) > opts.rel_tol) {
        line.verdict = "REGRESSED";
        ++d.regressions;
      } else if (!overlap && better != Better::kNone && !worse &&
                 std::fabs(rel) > opts.rel_tol) {
        line.verdict = "improved";
        ++d.improvements;
      } else {
        line.verdict = "ok";
      }
    } else {  // scalar
      const double ov = om.num_or("value", 0.0);
      const double nv = nm->num_or("value", 0.0);
      const Better better =
          resolve_better(name, better_from(nm->str_or("better", "none")));
      const double rel = ov != 0.0 ? (nv - ov) / ov : 0.0;
      const bool worse = better == Better::kLower   ? rel > 0.0
                         : better == Better::kHigher ? rel < 0.0
                                                     : false;
      line.detail = json_number(ov) + " -> " + json_number(nv) + " (" +
                    rel_change_str(ov, nv) + ")";
      if (better != Better::kNone && std::fabs(rel) > opts.scalar_tol) {
        line.verdict = worse ? "REGRESSED" : "improved";
        ++(worse ? d.regressions : d.improvements);
      } else {
        line.verdict = "ok";
      }
    }
    d.lines.push_back(std::move(line));
  }

  for (const auto& [name, nm] : new_m->members) {
    (void)nm;
    if (old_m->find(name) == nullptr)
      d.lines.push_back({name, "new", "metric absent in old report"});
  }
  return d;
}

}  // namespace d500
