// Shared thread-pool runtime: the single owner of all compute threads.
//
// The paper's executors (§IV-D) assume the host engine exploits hardware
// parallelism; this subsystem provides it without sacrificing the
// reproducibility pillar. One persistent pool serves every parallel site —
// kernels (intra-op), graph executors (inter-op), and the data pipeline —
// replacing the former ad-hoc OpenMP regions that forked a fresh team per
// call and composed badly with the PrefetchLoader worker.
//
// Determinism contract: parallel work is decomposed as a pure function of
// the *problem* (range and grain; dependency structure), never of the
// thread count. Chunks write disjoint state and reductions combine chunk
// partials in fixed chunk order, so results are bit-identical at any
// D500_THREADS setting — including fully serial execution.
//
// Knob: D500_THREADS = total compute threads (workers + the calling
// thread). Default: hardware concurrency. 1 = fully serial, no workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace d500 {

class ThreadPool {
 public:
  /// The process-wide pool, created on first use with D500_THREADS threads.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total compute threads: workers plus the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Tears down the workers and restarts the pool with `threads` total
  /// compute threads (>= 1). Test hook backing the determinism contract
  /// (results must not change with the thread count). Must not be called
  /// while parallel work is in flight.
  void reset(int threads);

  /// Enqueues a job for a worker (or a help_while caller) to run. Jobs must
  /// not block waiting for other jobs — schedulers built on the pool keep
  /// the submitting thread working instead (see parallel_for).
  void enqueue(std::function<void()> job);

  /// Runs queued jobs on the calling thread until `done()` returns true,
  /// sleeping while the queue is empty. `done` is evaluated under the pool
  /// lock and must be cheap and lock-free (read atomics only). Wake a
  /// blocked caller whose condition changed with notify().
  void help_while(const std::function<bool()>& done);

  /// Wakes help_while callers so they re-evaluate their condition.
  void notify();

 private:
  explicit ThreadPool(int threads);
  void start_workers(int threads);
  void stop_workers();
  void worker_loop();

  /// Queue entry: the job plus its enqueue timestamp, feeding the
  /// "pool.queue_wait_ns" histogram (0 when metrics are off — not sampled).
  struct Job {
    std::function<void()> fn;
    std::int64_t enq_ns = 0;
  };
  static void record_queue_wait(std::int64_t enq_ns);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

namespace detail {
/// Multi-chunk, multi-thread body of parallel_for (threadpool.cpp).
void parallel_for_impl(std::int64_t begin, std::int64_t end, std::int64_t grain,
                       const std::function<void(std::int64_t, std::int64_t)>& fn);
}  // namespace detail

/// Deterministic parallel loop over [begin, end). The range is cut into
/// ceil(range/grain) chunks of `grain` iterations (last chunk short) — a
/// pure function of the range, never of the thread count — and
/// fn(chunk_begin, chunk_end) runs exactly once per chunk, possibly
/// concurrently, with the calling thread participating. The caller must
/// ensure chunks touch disjoint state; combine any per-chunk partials in
/// chunk order afterwards to stay deterministic. The first exception thrown
/// by fn is rethrown on the calling thread after in-flight chunks drain.
///
/// Templated so the serial path (one chunk, or a one-thread pool) calls the
/// functor directly: capturing lambdas never convert to std::function — a
/// conversion that heap-allocates past the ~16-byte SBO — keeping warm
/// single-threaded steps allocation-free. The conversion is paid only when
/// work actually fans out to the pool.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Fn&& fn) {
  if (end <= begin) return;
  const std::int64_t g = grain < 1 ? 1 : grain;
  const std::int64_t nchunks = (end - begin + g - 1) / g;
  if (nchunks == 1 || ThreadPool::instance().num_threads() == 1) {
    // Serial path: identical chunk decomposition, executed in order.
    for (std::int64_t c = 0; c < nchunks; ++c) {
      const std::int64_t lo = begin + c * g;
      const std::int64_t hi = lo + g < end ? lo + g : end;
      fn(lo, hi);
    }
    return;
  }
  detail::parallel_for_impl(begin, end, g, fn);
}

/// Runs tasks 0..deps.size()-1 on the pool respecting a dependency DAG:
/// deps[i] = number of prerequisites of task i; unblocks[i] lists the tasks
/// whose dependency count drops when i completes (one entry per edge).
/// Ready tasks are scheduled concurrently (inter-op parallelism); with a
/// single-thread pool, tasks run inline in deterministic FIFO order. The
/// first exception aborts scheduling of further tasks and is rethrown after
/// in-flight tasks drain. Throws Error on a stalled (cyclic) graph.
void run_task_graph(const std::vector<std::vector<int>>& unblocks,
                    std::vector<int> deps,
                    const std::function<void(int)>& fn);

}  // namespace d500
