#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "core/error.hpp"
#include "core/table.hpp"

namespace d500 {

std::string TestMetric::report() const {
  std::ostringstream os;
  os << name() << ": " << summary();
  return os.str();
}

double WallclockMetric::summary() const {
  if (samples_.empty()) return 0.0;
  return median(samples_);
}

std::string WallclockMetric::report() const {
  if (samples_.empty()) return name() + ": <no samples>";
  return name() + ": " + summary_to_string(summarize(samples_), 1e3, "ms");
}

double FlopsMetric::summary() const {
  const double t = wallclock_.summary();
  if (t <= 0.0) return 0.0;
  return static_cast<double>(flops_) / t / 1e9;
}

std::string FlopsMetric::report() const {
  std::ostringstream os;
  os.precision(4);
  os << name() << ": " << summary() << " GFLOP/s (" << flops_ << " flops)";
  return os.str();
}

std::string NormMetric::name() const {
  switch (kind_) {
    case NormKind::kL1: return "l1_norm";
    case NormKind::kL2: return "l2_norm";
    case NormKind::kLInf: return "linf_norm";
  }
  return "norm";
}

void NormMetric::observe(std::span<const float> values) {
  D500_CHECK_MSG(values.size() == reference_.size(),
                 "NormMetric: size mismatch vs reference");
  double acc = 0.0;
  switch (kind_) {
    case NormKind::kL1:
      for (std::size_t i = 0; i < values.size(); ++i)
        acc += std::abs(static_cast<double>(values[i]) - reference_[i]);
      break;
    case NormKind::kL2:
      for (std::size_t i = 0; i < values.size(); ++i) {
        const double d = static_cast<double>(values[i]) - reference_[i];
        acc += d * d;
      }
      acc = std::sqrt(acc);
      break;
    case NormKind::kLInf:
      for (std::size_t i = 0; i < values.size(); ++i)
        acc = std::max(acc,
                       std::abs(static_cast<double>(values[i]) - reference_[i]));
      break;
  }
  norms_.push_back(acc);
}

double NormMetric::summary() const {
  return norms_.empty() ? 0.0 : norms_.back();
}

std::string NormMetric::report() const {
  if (norms_.empty()) return name() + ": <no observations>";
  return name() + ": " + summary_to_string(summarize(norms_));
}

void MaxErrorMetric::observe(std::span<const float> values) {
  D500_CHECK_MSG(values.size() == reference_.size(),
                 "MaxErrorMetric: size mismatch vs reference");
  for (std::size_t i = 0; i < values.size(); ++i)
    max_error_ = std::max(
        max_error_, std::abs(static_cast<double>(values[i]) - reference_[i]));
}

void VarianceMetric::observe(std::span<const float> values) {
  if (mean_.empty()) {
    mean_.assign(values.size(), 0.0);
    m2_.assign(values.size(), 0.0);
  }
  D500_CHECK_MSG(values.size() == mean_.size(),
                 "VarianceMetric: inconsistent observation size");
  ++count_;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x = values[i];
    const double d = x - mean_[i];
    mean_[i] += d / static_cast<double>(count_);
    m2_[i] += d * (x - mean_[i]);
  }
}

double VarianceMetric::summary() const {
  if (count_ < 2 || m2_.empty()) return 0.0;
  double acc = 0.0;
  for (double v : m2_) acc += v / static_cast<double>(count_ - 1);
  return acc / static_cast<double>(m2_.size());
}

std::vector<double> VarianceMetric::variance_map() const {
  std::vector<double> out(m2_.size(), 0.0);
  if (count_ >= 2)
    for (std::size_t i = 0; i < m2_.size(); ++i)
      out[i] = m2_[i] / static_cast<double>(count_ - 1);
  return out;
}

HeatmapMetric::HeatmapMetric(std::vector<float> reference, int rows, int cols)
    : reference_(std::move(reference)), rows_(rows), cols_(cols),
      cells_(static_cast<std::size_t>(rows) * cols, 0.0) {
  D500_CHECK(rows > 0 && cols > 0);
}

void HeatmapMetric::observe(std::span<const float> values) {
  D500_CHECK_MSG(values.size() == reference_.size(),
                 "HeatmapMetric: size mismatch vs reference");
  // Map the flat index range onto the grid and accumulate max abs error per
  // cell, so hot regions survive downsampling.
  const std::size_t n = values.size();
  const std::size_t ncells = cells_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cell = (i * ncells) / (n == 0 ? 1 : n);
    const double err =
        std::abs(static_cast<double>(values[i]) - reference_[i]);
    cells_[std::min(cell, ncells - 1)] =
        std::max(cells_[std::min(cell, ncells - 1)], err);
  }
}

double HeatmapMetric::summary() const {
  double peak = 0.0;
  for (double c : cells_) peak = std::max(peak, c);
  return peak;
}

bool TimelineMetric::on_event(const EventInfo& info) {
  if (info.point != EventPoint::kBeforeOperator &&
      info.point != EventPoint::kAfterOperator)
    return true;
  const double now = clock_.seconds();
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(info.step, info.label);
  if (info.point == EventPoint::kBeforeOperator) {
    open_[key] = now;
  } else if (auto it = open_.find(key); it != open_.end()) {
    OpStat& st = ops_[info.label];
    ++st.calls;
    st.seconds += now - it->second;
    open_.erase(it);
  }
  return true;
}

double TimelineMetric::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [_, st] : ops_) total += st.seconds;
  return total;
}

std::map<std::string, TimelineMetric::OpStat> TimelineMetric::op_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

std::string TimelineMetric::report() const {
  const auto ops = op_stats();
  if (ops.empty()) return name() + ": <no operator events>";
  std::vector<std::pair<std::string, OpStat>> sorted(ops.begin(), ops.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.seconds != b.second.seconds)
      return a.second.seconds > b.second.seconds;
    return a.first < b.first;
  });
  Table t({"operator", "calls", "total [ms]", "mean [us]"});
  for (const auto& [op, st] : sorted)
    t.add_row({op, std::to_string(st.calls), Table::num(st.seconds * 1e3, 3),
               Table::num(st.seconds / static_cast<double>(st.calls) * 1e6, 1)});
  return name() + ":\n" + t.to_text();
}

std::string HeatmapMetric::render() const {
  static const char* kShades = " .:-=+*#%@";
  const double peak = summary();
  std::ostringstream os;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const double v = cells_[static_cast<std::size_t>(r) * cols_ + c];
      const int idx =
          peak <= 0.0 ? 0 : static_cast<int>(std::min(9.0, v / peak * 9.0));
      os << kShades[idx];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace d500
