// Portable SIMD abstraction for the float32 kernel layer.
//
// Every hot kernel (GEMM microkernel, elementwise maps, softmax rows,
// optimizer updates, batchnorm inner loops) is written once against a small
// vector type `V` with a uniform contract, instantiated twice — with the
// widest vector type this build supports (`VecN`) and with the one-lane
// scalar type (`Vec1`) — and selected at runtime by the D500_KERNEL knob
// (core/env). The instruction set is chosen at compile time from feature
// macros: AVX-512F, AVX2(+FMA), NEON, with Vec1 as the universal fallback,
// so a build without any SIMD flags (cmake -DD500_SIMD=OFF) degenerates to
// the scalar path everywhere and stays correct.
//
// Contract every Vec type obeys:
//   * `width`      — compile-time lane count; panel layouts derived from it
//                    (ops/gemm) are a build constant, NOT a dispatch-mode
//                    property, so packed buffers are shared between paths.
//   * load/store   — 64-byte-arena-aligned pointers (tensor storage);
//     loadu/storeu — arbitrary pointers (slices, tails of parallel chunks).
//   * fma(a,b,c)   — fused a*b+c in one rounding on every ISA, including
//                    Vec1 (std::fma), so the scalar and vector paths of a
//                    fixed-layout kernel round identically lane for lane.
//   * hsum/hmax    — horizontal reductions with a fixed, width-dependent
//                    combination order (deterministic per dispatch mode).
//   * vexp/vsigmoid/vtanh — Cephes-style polynomial approximations shared
//                    by ALL instantiations; scalar dispatch uses the same
//                    polynomial, so scalar-vs-SIMD agreement is a few ULP.
//
// Tail rule: kernels consume full `V::width` lanes while they fit and
// finish every range with Vec1 iterations. Chunk decomposition (grain,
// range) stays a pure function of the problem size, so results remain
// bit-identical at any thread count — same guarantee as core/threadpool.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace d500::simd {

// ---------------------------------------------------------------------------
// One-lane vector: the universal fallback and the tail iterator.

struct Vec1 {
  static constexpr int width = 1;
  float v;

  static Vec1 load(const float* p) { return {*p}; }
  static Vec1 loadu(const float* p) { return {*p}; }
  static Vec1 broadcast(float x) { return {x}; }
  static Vec1 zero() { return {0.0f}; }
  void store(float* p) const { *p = v; }
  void storeu(float* p) const { *p = v; }

  friend Vec1 operator+(Vec1 a, Vec1 b) { return {a.v + b.v}; }
  friend Vec1 operator-(Vec1 a, Vec1 b) { return {a.v - b.v}; }
  friend Vec1 operator*(Vec1 a, Vec1 b) { return {a.v * b.v}; }
  friend Vec1 operator/(Vec1 a, Vec1 b) { return {a.v / b.v}; }
  static Vec1 fma(Vec1 a, Vec1 b, Vec1 c) { return {std::fma(a.v, b.v, c.v)}; }
  static Vec1 max(Vec1 a, Vec1 b) { return {a.v > b.v ? a.v : b.v}; }
  static Vec1 min(Vec1 a, Vec1 b) { return {a.v < b.v ? a.v : b.v}; }
  static Vec1 sqrt(Vec1 a) { return {std::sqrt(a.v)}; }
  static Vec1 floor(Vec1 a) { return {std::floor(a.v)}; }
  /// a where m > 0, b elsewhere (mask is a value comparison, see select()).
  static Vec1 select_gt_zero(Vec1 m, Vec1 a, Vec1 b) {
    return {m.v > 0.0f ? a.v : b.v};
  }
  /// 2^n for n an integral-valued float in the expf range.
  static Vec1 pow2i(Vec1 n) {
    const std::int32_t bits = (static_cast<std::int32_t>(n.v) + 127) << 23;
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return {out};
  }
  float hsum() const { return v; }
  float hmax() const { return v; }
};

// ---------------------------------------------------------------------------
// AVX-512F: 16 lanes.

#if defined(__AVX512F__)
struct Vec16 {
  static constexpr int width = 16;
  __m512 v;

  static Vec16 load(const float* p) { return {_mm512_load_ps(p)}; }
  static Vec16 loadu(const float* p) { return {_mm512_loadu_ps(p)}; }
  static Vec16 broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static Vec16 zero() { return {_mm512_setzero_ps()}; }
  void store(float* p) const { _mm512_store_ps(p, v); }
  void storeu(float* p) const { _mm512_storeu_ps(p, v); }

  friend Vec16 operator+(Vec16 a, Vec16 b) { return {_mm512_add_ps(a.v, b.v)}; }
  friend Vec16 operator-(Vec16 a, Vec16 b) { return {_mm512_sub_ps(a.v, b.v)}; }
  friend Vec16 operator*(Vec16 a, Vec16 b) { return {_mm512_mul_ps(a.v, b.v)}; }
  friend Vec16 operator/(Vec16 a, Vec16 b) { return {_mm512_div_ps(a.v, b.v)}; }
  static Vec16 fma(Vec16 a, Vec16 b, Vec16 c) {
    return {_mm512_fmadd_ps(a.v, b.v, c.v)};
  }
  static Vec16 max(Vec16 a, Vec16 b) { return {_mm512_max_ps(a.v, b.v)}; }
  static Vec16 min(Vec16 a, Vec16 b) { return {_mm512_min_ps(a.v, b.v)}; }
  static Vec16 sqrt(Vec16 a) { return {_mm512_sqrt_ps(a.v)}; }
  static Vec16 floor(Vec16 a) {
    return {_mm512_roundscale_ps(a.v, _MM_FROUND_TO_NEG_INF |
                                          _MM_FROUND_NO_EXC)};
  }
  static Vec16 select_gt_zero(Vec16 m, Vec16 a, Vec16 b) {
    const __mmask16 k = _mm512_cmp_ps_mask(m.v, _mm512_setzero_ps(), _CMP_GT_OQ);
    return {_mm512_mask_blend_ps(k, b.v, a.v)};
  }
  static Vec16 pow2i(Vec16 n) {
    const __m512i i = _mm512_cvtps_epi32(n.v);
    const __m512i bits =
        _mm512_slli_epi32(_mm512_add_epi32(i, _mm512_set1_epi32(127)), 23);
    return {_mm512_castsi512_ps(bits)};
  }
  float hsum() const { return _mm512_reduce_add_ps(v); }
  float hmax() const { return _mm512_reduce_max_ps(v); }
};
#endif  // __AVX512F__

// ---------------------------------------------------------------------------
// AVX2: 8 lanes. FMA is required alongside AVX2 by the build (cmake adds
// -mavx2 -mfma together); the mul+add fallback keeps -mavx2-only builds
// compiling, at the cost of the one-rounding guarantee.

#if defined(__AVX2__)
struct Vec8 {
  static constexpr int width = 8;
  __m256 v;

  static Vec8 load(const float* p) { return {_mm256_load_ps(p)}; }
  static Vec8 loadu(const float* p) { return {_mm256_loadu_ps(p)}; }
  static Vec8 broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static Vec8 zero() { return {_mm256_setzero_ps()}; }
  void store(float* p) const { _mm256_store_ps(p, v); }
  void storeu(float* p) const { _mm256_storeu_ps(p, v); }

  friend Vec8 operator+(Vec8 a, Vec8 b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend Vec8 operator-(Vec8 a, Vec8 b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend Vec8 operator*(Vec8 a, Vec8 b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend Vec8 operator/(Vec8 a, Vec8 b) { return {_mm256_div_ps(a.v, b.v)}; }
  static Vec8 fma(Vec8 a, Vec8 b, Vec8 c) {
#if defined(__FMA__)
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
    return {_mm256_add_ps(_mm256_mul_ps(a.v, b.v), c.v)};
#endif
  }
  static Vec8 max(Vec8 a, Vec8 b) { return {_mm256_max_ps(a.v, b.v)}; }
  static Vec8 min(Vec8 a, Vec8 b) { return {_mm256_min_ps(a.v, b.v)}; }
  static Vec8 sqrt(Vec8 a) { return {_mm256_sqrt_ps(a.v)}; }
  static Vec8 floor(Vec8 a) { return {_mm256_floor_ps(a.v)}; }
  static Vec8 select_gt_zero(Vec8 m, Vec8 a, Vec8 b) {
    const __m256 k = _mm256_cmp_ps(m.v, _mm256_setzero_ps(), _CMP_GT_OQ);
    return {_mm256_blendv_ps(b.v, a.v, k)};
  }
  static Vec8 pow2i(Vec8 n) {
    const __m256i i = _mm256_cvtps_epi32(n.v);
    const __m256i bits =
        _mm256_slli_epi32(_mm256_add_epi32(i, _mm256_set1_epi32(127)), 23);
    return {_mm256_castsi256_ps(bits)};
  }
  float hsum() const {
    // Fixed combination order: (lo + hi) pairwise within a 128-bit half.
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
  }
  float hmax() const {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_max_ps(lo, hi);
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
  }
};
#endif  // __AVX2__

// ---------------------------------------------------------------------------
// NEON: 4 lanes (AArch64).

#if defined(__ARM_NEON)
struct Vec4 {
  static constexpr int width = 4;
  float32x4_t v;

  static Vec4 load(const float* p) { return {vld1q_f32(p)}; }
  static Vec4 loadu(const float* p) { return {vld1q_f32(p)}; }
  static Vec4 broadcast(float x) { return {vdupq_n_f32(x)}; }
  static Vec4 zero() { return {vdupq_n_f32(0.0f)}; }
  void store(float* p) const { vst1q_f32(p, v); }
  void storeu(float* p) const { vst1q_f32(p, v); }

  friend Vec4 operator+(Vec4 a, Vec4 b) { return {vaddq_f32(a.v, b.v)}; }
  friend Vec4 operator-(Vec4 a, Vec4 b) { return {vsubq_f32(a.v, b.v)}; }
  friend Vec4 operator*(Vec4 a, Vec4 b) { return {vmulq_f32(a.v, b.v)}; }
  friend Vec4 operator/(Vec4 a, Vec4 b) { return {vdivq_f32(a.v, b.v)}; }
  static Vec4 fma(Vec4 a, Vec4 b, Vec4 c) { return {vfmaq_f32(c.v, a.v, b.v)}; }
  static Vec4 max(Vec4 a, Vec4 b) { return {vmaxq_f32(a.v, b.v)}; }
  static Vec4 min(Vec4 a, Vec4 b) { return {vminq_f32(a.v, b.v)}; }
  static Vec4 sqrt(Vec4 a) { return {vsqrtq_f32(a.v)}; }
  static Vec4 floor(Vec4 a) { return {vrndmq_f32(a.v)}; }
  static Vec4 select_gt_zero(Vec4 m, Vec4 a, Vec4 b) {
    return {vbslq_f32(vcgtq_f32(m.v, vdupq_n_f32(0.0f)), a.v, b.v)};
  }
  static Vec4 pow2i(Vec4 n) {
    const int32x4_t i = vcvtq_s32_f32(n.v);
    const int32x4_t bits = vshlq_n_s32(vaddq_s32(i, vdupq_n_s32(127)), 23);
    return {vreinterpretq_f32_s32(bits)};
  }
  float hsum() const {
    const float32x2_t s = vadd_f32(vget_low_f32(v), vget_high_f32(v));
    return vget_lane_f32(vpadd_f32(s, s), 0);
  }
  float hmax() const {
    const float32x2_t s = vmax_f32(vget_low_f32(v), vget_high_f32(v));
    return vget_lane_f32(vpmax_f32(s, s), 0);
  }
};
#endif  // __ARM_NEON

// ---------------------------------------------------------------------------
// Native width for this build. Layout constants (GEMM panel widths) derive
// from kNativeWidth and therefore never change with the runtime dispatch.

#if defined(__AVX512F__)
using VecN = Vec16;
#elif defined(__AVX2__)
using VecN = Vec8;
#elif defined(__ARM_NEON)
using VecN = Vec4;
#else
using VecN = Vec1;
#endif

inline constexpr int kNativeWidth = VecN::width;

/// Human-readable name of the compiled-in instruction set.
const char* isa_name();

// ---------------------------------------------------------------------------
// Runtime dispatch. D500_KERNEL=auto|scalar|simd (core/env) picks the
// initial mode once; tests and benches flip it programmatically to compare
// paths inside one process. `scalar` forces the Vec1 instantiation of every
// kernel; `simd` (and `auto`) use VecN when the build has one.

enum class KernelDispatch { kAuto, kScalar, kSimd };

KernelDispatch kernel_dispatch();
void set_kernel_dispatch(KernelDispatch d);
const char* kernel_dispatch_name(KernelDispatch d);

/// True when kernels should run their VecN instantiation.
bool dispatch_simd();

// ---------------------------------------------------------------------------
// exp/sigmoid/tanh approximations, shared by every instantiation.

/// expf via the Cephes polynomial: clamp to the finite-float range, split
/// x = n*ln2 + r with |r| <= ln2/2, degree-5 polynomial in r, scale by 2^n.
/// Max observed error vs std::expf is ~2 ULP across the clamped range.
template <class V>
inline V vexp(V x) {
  x = V::min(x, V::broadcast(88.3762626647950f));
  x = V::max(x, V::broadcast(-87.3365478515625f));
  const V n = V::floor(
      V::fma(x, V::broadcast(1.44269504088896341f), V::broadcast(0.5f)));
  // r = x - n*ln2 with ln2 split hi/lo to keep the reduction exact.
  V r = V::fma(n, V::broadcast(-0.693359375f), x);
  r = V::fma(n, V::broadcast(2.12194440e-4f), r);
  V p = V::broadcast(1.9875691500e-4f);
  p = V::fma(p, r, V::broadcast(1.3981999507e-3f));
  p = V::fma(p, r, V::broadcast(8.3334519073e-3f));
  p = V::fma(p, r, V::broadcast(4.1665795894e-2f));
  p = V::fma(p, r, V::broadcast(1.6666665459e-1f));
  p = V::fma(p, r, V::broadcast(5.0000001201e-1f));
  const V res = V::fma(r * r, p, r) + V::broadcast(1.0f);
  return res * V::pow2i(n);
}

/// 1 / (1 + exp(-x)).
template <class V>
inline V vsigmoid(V x) {
  return V::broadcast(1.0f) /
         (V::broadcast(1.0f) + vexp(V::zero() - x));
}

/// tanh(x) = 1 - 2/(exp(2x) + 1).
template <class V>
inline V vtanh(V x) {
  const V e = vexp(x + x);
  return V::broadcast(1.0f) -
         V::broadcast(2.0f) / (e + V::broadcast(1.0f));
}

// ---------------------------------------------------------------------------
// Lane iteration helper: full V-width lanes while they fit, then a Vec1
// tail — the uniform tail rule. `f(tag, i)` receives the vector type to use
// as a value tag (`using W = decltype(tag)`) and the element index.

template <class V, class F>
inline void lanes(std::int64_t lo, std::int64_t hi, F&& f) {
  std::int64_t i = lo;
  if constexpr (V::width > 1) {
    for (; i + V::width <= hi; i += V::width) f(V::zero(), i);
  }
  for (; i < hi; ++i) f(Vec1::zero(), i);
}

/// Instantiate-and-run under the runtime dispatch mode: calls `f` with a
/// value of the selected vector type (VecN under simd/auto, Vec1 under
/// scalar) to use as a type tag. Kernels branch once per call, not per
/// element:
///   simd::dispatch([&](auto tag) { using V = decltype(tag); ... });
template <class F>
inline void dispatch(F&& f) {
  if (dispatch_simd())
    f(VecN::zero());
  else
    f(Vec1::zero());
}

}  // namespace d500::simd
