#include "core/metrics_registry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "core/env.hpp"
#include "core/json.hpp"
#include "core/table.hpp"

namespace d500 {

namespace metrics_detail {

std::atomic<int> g_state{0};

bool init_from_env() {
  static const bool enabled = [] {
    const bool on = metrics_setting();
    g_state.store(on ? 2 : 1, std::memory_order_relaxed);
    return on;
  }();
  return enabled;
}

std::int64_t now_ns() {
  // One steady-clock domain for all latency samples; no shared epoch is
  // needed because only deltas are recorded.
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int thread_slot() {
  static std::atomic<int> next{0};
  thread_local const int slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

}  // namespace metrics_detail

// ---------------------------------------------------------------------------
// Counter

std::atomic<std::uint64_t>& Counter::shard() {
  return shards_[static_cast<std::size_t>(metrics_detail::thread_slot())];
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& s : shards_) s.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

int Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN clamp to the underflow slot
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5,1)
  if (exp <= kMinExp) return 0;
  if (exp > kMaxExp) return kBuckets - 1;
  int sub = static_cast<int>((frac - 0.5) * (2 * kSubBuckets));
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return (exp - kMinExp - 1) * kSubBuckets + sub + 1;
}

double Histogram::bucket_lo(int idx) {
  if (idx <= 0) return 0.0;
  if (idx >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const int exp = kMinExp + 1 + (idx - 1) / kSubBuckets;
  const int sub = (idx - 1) % kSubBuckets;
  return std::ldexp(0.5 + static_cast<double>(sub) * 0.5 / kSubBuckets, exp);
}

double Histogram::bucket_hi(int idx) {
  if (idx <= 0) return std::ldexp(1.0, kMinExp);
  if (idx >= kBuckets - 1) return std::ldexp(1.0, kMaxExp + 1);
  const int exp = kMinExp + 1 + (idx - 1) / kSubBuckets;
  const int sub = (idx - 1) % kSubBuckets;
  return std::ldexp(0.5 + static_cast<double>(sub + 1) * 0.5 / kSubBuckets,
                    exp);
}

Histogram::Shard& Histogram::shard() {
  const auto slot =
      static_cast<std::size_t>(metrics_detail::thread_slot());
  Shard* s = shards_[slot].load(std::memory_order_acquire);
  if (s != nullptr) return *s;
  auto* fresh = new Shard;
  Shard* expected = nullptr;
  if (shards_[slot].compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel))
    return *fresh;
  delete fresh;  // another thread on the same slot won the race
  return *expected;
}

Histogram::~Histogram() {
  for (auto& slot : shards_) delete slot.load(std::memory_order_acquire);
}

void Histogram::record(double v) {
  if (!metrics_enabled()) return;
  Shard& s = shard();
  s.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  const std::uint64_t prev = s.count.fetch_add(1, std::memory_order_relaxed);
  if (prev == 0) {
    s.min.store(v, std::memory_order_relaxed);
    s.max.store(v, std::memory_order_relaxed);
    return;
  }
  double cur = s.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !s.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  snap.unit = unit_;
  snap.buckets.assign(kBuckets, 0);
  bool any = false;
  for (const auto& slot : shards_) {
    const Shard* s = slot.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    if (s->count.load(std::memory_order_relaxed) == 0) continue;
    for (int b = 0; b < kBuckets; ++b)
      snap.buckets[static_cast<std::size_t>(b)] +=
          s->buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    snap.sum += s->sum.load(std::memory_order_relaxed);
    const double lo = s->min.load(std::memory_order_relaxed);
    const double hi = s->max.load(std::memory_order_relaxed);
    snap.min = any ? std::min(snap.min, lo) : lo;
    snap.max = any ? std::max(snap.max, hi) : hi;
    any = true;
  }
  for (const std::uint64_t b : snap.buckets) snap.count += b;
  return snap;
}

void Histogram::reset() {
  for (auto& slot : shards_) {
    Shard* s = slot.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (auto& b : s->buckets) b.store(0, std::memory_order_relaxed);
    s->sum.store(0.0, std::memory_order_relaxed);
    s->min.store(0.0, std::memory_order_relaxed);
    s->max.store(0.0, std::memory_order_relaxed);
    s->count.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the order statistic (1-based), matching the nearest-rank
  // definition; rank 1 at q=0, rank `count` at q=1.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= target) {
      // Clamp the representative into the observed range so estimates never
      // fall outside [min, max].
      const double mid = Histogram::bucket_mid(static_cast<int>(b));
      return std::min(std::max(mid, min), max);
    }
  }
  return max;
}

// ---------------------------------------------------------------------------
// Registry

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked singleton: metric references handed out to instrumentation
  // sites must outlive every static destructor (atexit trace flush reads
  // the registry).
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl;  // intentionally leaked, see instance()
  return *impl;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end())
    it = im.counters
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end())
    it = im.gauges
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view unit) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end())
    it = im.histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name),
                                                  std::string(unit)))
             .first;
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  Snapshot snap;
  for (const auto& [name, c] : im.counters)
    snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : im.gauges)
    snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : im.histograms)
    snap.histograms.push_back(h->snapshot());
  return snap;
}

std::string MetricsRegistry::summary_text() const {
  const Snapshot snap = snapshot();
  std::string out;
  bool any_hist = false;
  for (const auto& h : snap.histograms) any_hist = any_hist || h.count > 0;
  if (any_hist) {
    Table t({"histogram", "unit", "count", "p50", "p95", "p99", "max"});
    for (const auto& h : snap.histograms) {
      if (h.count == 0) continue;
      t.add_row({h.name, h.unit, std::to_string(h.count),
                 Table::num(h.p50(), 1), Table::num(h.p95(), 1),
                 Table::num(h.p99(), 1), Table::num(h.max, 1)});
    }
    out += t.to_text();
  }
  std::string scalars;
  for (const auto& [name, v] : snap.counters) {
    if (v == 0) continue;
    scalars += (scalars.empty() ? "" : ", ") + name + "=" + std::to_string(v);
  }
  for (const auto& [name, v] : snap.gauges) {
    if (v == 0.0) continue;
    scalars += (scalars.empty() ? "" : ", ") + name + "=" + Table::num(v, 1);
  }
  if (!scalars.empty()) out += "metrics: " + scalars + "\n";
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  const Snapshot snap = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    w.key(h.name);
    w.begin_object();
    w.kv("unit", std::string_view(h.unit));
    w.kv("count", h.count);
    w.kv("mean", h.mean());
    w.kv("p50", h.p50());
    w.kv("p95", h.p95());
    w.kv("p99", h.p99());
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.end_object();
  }
  w.end_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : snap.counters)
    if (v != 0) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : snap.gauges)
    if (v != 0.0) w.kv(name, v);
  w.end_object();
  w.end_object();
  return w.take();
}

void MetricsRegistry::enable() {
  metrics_enabled();  // resolve the env default first (idempotent)
  metrics_detail::g_state.store(2, std::memory_order_relaxed);
}

void MetricsRegistry::disable() {
  metrics_enabled();
  metrics_detail::g_state.store(1, std::memory_order_relaxed);
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

}  // namespace d500
