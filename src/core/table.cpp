#include "core/table.hpp"

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/error.hpp"

namespace d500 {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  D500_CHECK_MSG(row.size() == header_.size(),
                 "Table row width != header width");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << r[c];
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule += std::string(widths[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    return out + "\"";
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << esc(header_[c]);
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << (c ? "," : "") << esc(r[c]);
    os << '\n';
  }
  return os.str();
}

void print_bench_header(const std::string& name, std::uint64_t seed,
                        const std::string& config) {
  std::cout << "==================================================\n"
            << "Deep500++ benchmark: " << name << "\n"
            << "seed=" << seed;
  if (!config.empty()) std::cout << "  " << config;
  std::cout << "\n==================================================\n";
}

}  // namespace d500
