#include "core/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "core/arena.hpp"
#include "core/env.hpp"
#include "core/metrics_registry.hpp"
#include "core/table.hpp"

namespace d500 {

namespace trace_detail {

std::atomic<int> g_state{0};

namespace {

constexpr std::size_t kWordsPerRecord = sizeof(TraceRecord) / 8;

/// One thread's ring. Slots are atomic words so the collector can read
/// them while the owner writes: relaxed stores ordered by the release
/// store on head_, wraparound races resolved by re-reading head_.
struct Ring {
  Ring(int tid, std::size_t capacity) : tid(tid) { resize(capacity); }

  void resize(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    this->capacity = cap;
    mask = cap - 1;
    words = std::vector<std::atomic<std::uint64_t>>(cap * kWordsPerRecord);
    head.store(0, std::memory_order_relaxed);
  }

  int tid;
  std::size_t capacity = 0;
  std::size_t mask = 0;
  std::atomic<std::uint64_t> head{0};  // records ever written
  std::vector<std::atomic<std::uint64_t>> words;
};

/// Ring registry. Rings are immortal (leaked singleton): records from
/// exited threads stay collectable and the atexit flush never touches
/// freed memory, whatever the static-destruction order.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
  std::size_t capacity = 0;  // for rings created after init
  std::string out_path;      // atexit flush target; empty = none
};

Registry& registry() {
  static Registry* r = new Registry;  // intentionally leaked
  return *r;
}

/// Trace epoch: first touch wins; all threads stamp against it.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

thread_local Ring* t_ring = nullptr;

Ring& local_ring() {
  if (t_ring != nullptr) return *t_ring;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.capacity == 0) reg.capacity = trace_buffer_records();
  reg.rings.push_back(std::make_unique<Ring>(
      static_cast<int>(reg.rings.size()), reg.capacity));
  t_ring = reg.rings.back().get();
  return *t_ring;
}

void flush_at_exit() {
  std::string path;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    path = reg.out_path;
  }
  if (path.empty()) return;
  if (Trace::write(path)) {
    std::uint64_t total = 0, dropped = 0;
    for (const auto& tt : Trace::collect()) {
      total += tt.emitted;
      dropped += tt.dropped;
    }
    std::fprintf(stderr, "trace: wrote %llu events to %s (%llu dropped)\n",
                 static_cast<unsigned long long>(total - dropped), path.c_str(),
                 static_cast<unsigned long long>(dropped));
  } else {
    std::fprintf(stderr, "trace: FAILED to write %s\n", path.c_str());
  }
}

}  // namespace

bool init_from_env() {
  static const bool enabled = [] {
    trace_epoch();  // pin the clock origin before any record is stamped
    Registry& reg = registry();
    std::string path;
    {
      std::lock_guard<std::mutex> lock(reg.mu);
      if (reg.capacity == 0) reg.capacity = trace_buffer_records();
      reg.out_path = trace_path();
      path = reg.out_path;
    }
    if (path.empty()) {
      g_state.store(1, std::memory_order_relaxed);
      return false;
    }
    std::atexit(flush_at_exit);
    g_state.store(2, std::memory_order_relaxed);
    return true;
  }();
  return enabled;
}

void emit(TraceKind kind, const char* category, std::string_view name,
          double value) {
  Ring& ring = local_ring();
  TraceRecord rec;
  rec.ts_ns = now_ns();
  rec.value = value;
  rec.category = category;
  const std::size_t n = std::min(name.size(), kTraceNameCap - 1);
  std::memcpy(rec.name, name.data(), n);
  rec.kind = kind;

  std::uint64_t w[kWordsPerRecord];
  std::memcpy(w, &rec, sizeof(rec));
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  std::atomic<std::uint64_t>* slot =
      ring.words.data() + (h & ring.mask) * kWordsPerRecord;
  for (std::size_t i = 0; i < kWordsPerRecord; ++i)
    slot[i].store(w[i], std::memory_order_relaxed);
  ring.head.store(h + 1, std::memory_order_release);
}

}  // namespace trace_detail

void TraceSpan::open(const char* category, std::string_view name) {
  category_ = category;
  const std::size_t n = std::min(name.size(), kTraceNameCap - 1);
  std::memcpy(name_, name.data(), n);
  name_[n] = '\0';
  trace_detail::emit(TraceKind::kSpanBegin, category, name, 0.0);
}

void TraceSpan::close() {
  trace_detail::emit(TraceKind::kSpanEnd, category_, name_, 0.0);
}

void Trace::enable(std::size_t buffer_records) {
  trace_enabled();  // resolve env config (output path, default capacity)
  trace_detail::Registry& reg = trace_detail::registry();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    if (buffer_records != 0) {
      reg.capacity = buffer_records;
      for (auto& ring : reg.rings) ring->resize(buffer_records);
    }
  }
  trace_detail::g_state.store(2, std::memory_order_relaxed);
}

void Trace::disable() {
  trace_enabled();
  trace_detail::g_state.store(1, std::memory_order_relaxed);
}

void Trace::reset() {
  trace_detail::Registry& reg = trace_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& ring : reg.rings)
    ring->head.store(0, std::memory_order_relaxed);
}

std::vector<Trace::ThreadTrace> Trace::collect() {
  trace_detail::Registry& reg = trace_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<ThreadTrace> out;
  out.reserve(reg.rings.size());
  for (const auto& rp : reg.rings) {
    const trace_detail::Ring& ring = *rp;
    ThreadTrace tt;
    tt.tid = ring.tid;
    const std::uint64_t cap = ring.capacity;
    const std::uint64_t h0 = ring.head.load(std::memory_order_acquire);
    const std::uint64_t lo0 = h0 > cap ? h0 - cap : 0;
    std::vector<std::uint64_t> index;
    std::vector<TraceRecord> records;
    index.reserve(static_cast<std::size_t>(h0 - lo0));
    records.reserve(static_cast<std::size_t>(h0 - lo0));
    for (std::uint64_t i = lo0; i < h0; ++i) {
      std::uint64_t w[trace_detail::kWordsPerRecord];
      const std::atomic<std::uint64_t>* slot =
          ring.words.data() + (i & ring.mask) * trace_detail::kWordsPerRecord;
      for (std::size_t k = 0; k < trace_detail::kWordsPerRecord; ++k)
        w[k] = slot[k].load(std::memory_order_relaxed);
      TraceRecord rec;
      std::memcpy(&rec, w, sizeof(rec));
      index.push_back(i);
      records.push_back(rec);
    }
    // Slots overwritten while we read (head advanced past their index +
    // capacity) may be torn; count them as dropped instead of keeping them.
    const std::uint64_t h1 = ring.head.load(std::memory_order_acquire);
    const std::uint64_t lo1 = h1 > cap ? h1 - cap : 0;
    tt.emitted = h1;
    tt.dropped = lo1;
    for (std::size_t k = 0; k < records.size(); ++k)
      if (index[k] >= lo1) tt.records.push_back(records[k]);
    out.push_back(std::move(tt));
  }
  return out;
}

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

double sanitize(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

std::string Trace::to_chrome_json() {
  const auto threads = collect();
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit_event = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  for (const auto& tt : threads) {
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"thread %d\"}}",
                  tt.tid, tt.tid);
    emit_event(buf);
    // Per-ring accounting so a viewer (or jq) can see how much of this
    // thread's activity was overwritten before collection.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"trace_ring\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"emitted\":%llu,\"dropped\":%llu}}",
                  tt.tid, static_cast<unsigned long long>(tt.emitted),
                  static_cast<unsigned long long>(tt.dropped));
    emit_event(buf);
    for (const TraceRecord& r : tt.records) {
      const char* ph = "i";
      switch (r.kind) {
        case TraceKind::kSpanBegin: ph = "B"; break;
        case TraceKind::kSpanEnd: ph = "E"; break;
        case TraceKind::kCounter: ph = "C"; break;
        case TraceKind::kInstant: ph = "i"; break;
      }
      std::string line = "{\"name\":\"";
      append_json_escaped(line, r.name);
      line += "\",\"cat\":\"";
      append_json_escaped(line, r.category != nullptr ? r.category : "?");
      line += "\",\"ph\":\"";
      line += ph;
      line += "\",\"pid\":1,\"tid\":" + std::to_string(tt.tid);
      char ts[48];
      std::snprintf(ts, sizeof(ts), ",\"ts\":%.3f",
                    sanitize(static_cast<double>(r.ts_ns) / 1e3));
      line += ts;
      if (r.kind == TraceKind::kCounter) {
        char val[64];
        std::snprintf(val, sizeof(val), "%.6g", sanitize(r.value));
        line += ",\"args\":{\"";
        append_json_escaped(line, r.name);
        line += "\":";
        line += val;
        line += "}";
      } else if (r.kind == TraceKind::kInstant) {
        line += ",\"s\":\"t\"";
      }
      line += "}";
      emit_event(line);
    }
  }
  out += "\n]";
  // Histogram/counter roll-up rides along as a top-level key; Chrome's
  // viewer ignores unknown keys, tools can parse it back out.
  const std::string metrics = MetricsRegistry::instance().snapshot_json();
  if (!metrics.empty()) {
    out += ",\n\"metrics\":";
    out += metrics;
  }
  out += "}\n";
  return out;
}

std::string Trace::summary() {
  struct CatStat {
    std::int64_t spans = 0;
    double span_seconds = 0.0;
    std::int64_t counters = 0;
    std::int64_t instants = 0;
    std::int64_t unmatched = 0;  // begins/ends orphaned by wraparound
  };
  std::map<std::string, CatStat> cats;
  std::uint64_t emitted = 0, dropped = 0;
  const auto threads = collect();
  for (const auto& tt : threads) {
    emitted += tt.emitted;
    dropped += tt.dropped;
    // Spans are strictly nested per thread (RAII), so a stack pairs them;
    // wraparound can orphan begins or ends, which only pair on an exact
    // category+name match.
    std::vector<const TraceRecord*> stack;
    for (const TraceRecord& r : tt.records) {
      const std::string cat = r.category != nullptr ? r.category : "?";
      switch (r.kind) {
        case TraceKind::kSpanBegin:
          stack.push_back(&r);
          break;
        case TraceKind::kSpanEnd:
          if (!stack.empty() && stack.back()->category == r.category &&
              std::strncmp(stack.back()->name, r.name, kTraceNameCap) == 0) {
            CatStat& cs = cats[cat];
            ++cs.spans;
            cs.span_seconds +=
                static_cast<double>(r.ts_ns - stack.back()->ts_ns) / 1e9;
            stack.pop_back();
          } else {
            ++cats[cat].unmatched;
          }
          break;
        case TraceKind::kCounter: ++cats[cat].counters; break;
        case TraceKind::kInstant: ++cats[cat].instants; break;
      }
    }
    for (const TraceRecord* open : stack)
      ++cats[open->category != nullptr ? open->category : "?"].unmatched;
  }

  Table t({"category", "spans", "span total [ms]", "counters", "instants",
           "unmatched"});
  for (const auto& [cat, cs] : cats)
    t.add_row({cat, std::to_string(cs.spans),
               Table::num(cs.span_seconds * 1e3, 3),
               std::to_string(cs.counters), std::to_string(cs.instants),
               std::to_string(cs.unmatched)});
  std::string out = t.to_text();
  out += "trace: " + std::to_string(emitted) + " records emitted, " +
         std::to_string(dropped) + " dropped, " +
         std::to_string(threads.size()) + " threads\n";
  if (dropped > 0) {
    // Which rings overflowed — undersized D500_TRACE_BUFSZ shows up here.
    out += "trace: drops by ring:";
    for (const auto& tt : threads)
      if (tt.dropped > 0)
        out += " tid " + std::to_string(tt.tid) + "=" +
               std::to_string(tt.dropped);
    out += "\n";
  }
  const Arena::Stats as = Arena::instance().stats();
  out += "arena: " + std::to_string(as.bytes_in_use) + " B in use, peak " +
         std::to_string(as.peak_bytes) + " B, " +
         std::to_string(as.reuse_hits) + " reuse hits / " +
         std::to_string(as.fresh_blocks) + " fresh blocks, " +
         std::to_string(as.cached_bytes) + " B cached\n";
  // Histogram percentiles (per-op latency, queue waits, collectives) from
  // the metrics registry — the distributions behind the span timeline.
  out += MetricsRegistry::instance().summary_text();
  return out;
}

bool Trace::write(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_chrome_json();
  return static_cast<bool>(out);
}

}  // namespace d500
