// Plain-text result tables and CSV emission for benchmark binaries. Every
// bench prints a reproducibility header (seed, configuration) followed by
// one or more tables that mirror the paper's figures/tables.
#pragma once

#include <string>
#include <vector>

namespace d500 {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  std::string to_text() const;
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard reproducibility header: benchmark name, seed, and
/// free-form configuration notes.
void print_bench_header(const std::string& name, std::uint64_t seed,
                        const std::string& config);

}  // namespace d500
