// Hardware performance-counter profiling behind scoped regions.
//
// Wraps a Linux perf_event_open counter group — cycles, instructions,
// cache-misses, branch-misses, scheduled together so ratios (IPC,
// miss rates) are consistent — opened per PerfRegion for the calling
// thread. Counter multiplexing is handled by reading TIME_ENABLED /
// TIME_RUNNING and scaling.
//
// perf_event_open is frequently unavailable (CI containers, locked-down
// perf_event_paranoid, non-Linux hosts): every region then degrades to a
// wall-clock + getrusage fallback and flags the sample with
// perf_available=false, so benches always produce *something* and reports
// record honestly which kind of data they carry.
//
// Knob: D500_PERF = "auto" (default: try the syscall, fall back) or "off"
// (never attempt the syscall; rusage/clock only). perf_force_fallback()
// lets tests exercise the fallback path on hosts where perf works.
#pragma once

#include <cstdint>
#include <string>

namespace d500 {

/// One measured region's worth of hardware counters. Counter fields are
/// multiplex-scaled estimates (doubles); zero when perf is unavailable.
struct PerfCounts {
  bool perf_available = false;
  double cycles = 0.0;
  double instructions = 0.0;
  double cache_misses = 0.0;
  double branch_misses = 0.0;
  double wall_s = 0.0;
  double user_s = 0.0;
  double sys_s = 0.0;
  std::int64_t max_rss_kb = 0;  // process high-water mark at region end

  /// Instructions per cycle; 0 when cycles were not measured.
  double ipc() const { return cycles > 0.0 ? instructions / cycles : 0.0; }
  /// Cache misses per thousand instructions (MPKI).
  double cache_mpki() const {
    return instructions > 0.0 ? cache_misses / instructions * 1e3 : 0.0;
  }
  /// Branch misses per thousand instructions.
  double branch_mpki() const {
    return instructions > 0.0 ? branch_misses / instructions * 1e3 : 0.0;
  }

  /// One-line human-readable rendering ("ipc=2.31 cache-mpki=0.48 ..." or
  /// the fallback's "wall=.. user=.. sys=..").
  std::string to_string() const;
};

/// True when the D500_PERF knob allows attempting perf_event_open (and the
/// test hook has not forced the fallback). Read fresh on every call.
bool perf_events_allowed();

/// Test hook: force every subsequently-constructed PerfRegion onto the
/// rusage/clock fallback path, as if perf_event_open had failed.
void perf_force_fallback(bool on);

/// Scoped counter group for the calling thread. Construct once, then
/// begin()/end() around each measured region; end() returns the deltas.
/// Not thread-safe; create one per measuring thread.
class PerfRegion {
 public:
  PerfRegion();
  ~PerfRegion();
  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

  /// Whether the hardware group opened (false = fallback mode).
  bool perf_available() const { return available_; }

  void begin();
  PerfCounts end();

 private:
  static constexpr int kEvents = 4;
  struct Reading {
    double values[kEvents] = {};  // multiplex-scaled counts
    bool ok = false;
  };
  Reading read_group() const;

  int fds_[kEvents] = {-1, -1, -1, -1};
  bool available_ = false;
  Reading begin_reading_;
  std::int64_t begin_wall_ns_ = 0;
  double begin_user_s_ = 0.0;
  double begin_sys_s_ = 0.0;
};

/// Convenience: measures one callable invocation in a fresh region.
template <typename Fn>
PerfCounts perf_measure(Fn&& fn) {
  PerfRegion region;
  region.begin();
  fn();
  return region.end();
}

}  // namespace d500
