// Process-wide 64-byte-aligned allocator for tensor storage.
//
// Deep500++ executors run the same step shapes over and over, so the
// allocator's job is recycling, not general-purpose placement: blocks are
// rounded up to power-of-two size classes and returned to per-class free
// lists on deallocation, making a warm training step hit the free list for
// every transient tensor instead of the system heap. Every payload is
// 64-byte aligned (the contract tensor.hpp documents for vectorized
// kernels) and carries a 64-byte header in front recording its size class,
// so deallocation needs only the payload pointer — which is what lets the
// stateless Tensor deleter stay a plain function pointer.
//
// Knob: D500_ARENA = "arena" (default, recycling free lists) or "malloc"
// (aligned allocate/free per call — the A/B baseline for bench_memory_plan;
// the alignment contract holds in both modes). The mode is recorded per
// block, so switching modes mid-process (set_arena_mode) is always safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace d500 {

enum class ArenaMode { kArena, kMalloc };

class Arena {
 public:
  /// The process-wide instance (leaked, so tensors destroyed during static
  /// teardown can still free into it). Mode comes from D500_ARENA.
  static Arena& instance();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 64-byte-aligned storage for at least `bytes` (nullptr when 0).
  void* allocate(std::size_t bytes);
  /// Returns a block from allocate(); nullptr is a no-op. Arena-mode blocks
  /// go back to their size-class free list, malloc-mode blocks to the heap.
  void deallocate(void* p) noexcept;

  ArenaMode mode() const;
  void set_mode(ArenaMode m);

  struct Stats {
    std::uint64_t bytes_in_use = 0;   // payload bytes currently allocated
    std::uint64_t peak_bytes = 0;     // high-water mark of bytes_in_use
    std::uint64_t reuse_hits = 0;     // allocations served from a free list
    std::uint64_t fresh_blocks = 0;   // allocations that hit the heap
    std::uint64_t freed_blocks = 0;   // deallocate() calls on real blocks
    std::uint64_t cached_bytes = 0;   // payload bytes parked on free lists
  };
  Stats stats() const;

  /// Releases every free-listed block back to the heap (bytes_in_use is
  /// untouched; live blocks stay live).
  void trim();

 private:
  Arena();

  mutable std::mutex mu_;
  ArenaMode mode_ = ArenaMode::kArena;
  // free_lists_[k] holds blocks of payload size 2^k.
  std::vector<std::vector<void*>> free_lists_;
  Stats stats_;
};

/// Tensor-storage entry points: float payload of `n` elements,
/// uninitialized, 64-byte aligned. arena_free_floats matches the Tensor
/// deleter signature `void(*)(float*)`.
float* arena_alloc_floats(std::int64_t n);
void arena_free_floats(float* p);

}  // namespace d500
