#include "core/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "core/error.hpp"
#include "core/metrics_registry.hpp"
#include "core/trace.hpp"

namespace d500 {

namespace {

int env_thread_count() {
  if (const char* v = std::getenv("D500_THREADS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<int>(std::min(n, 1024L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(env_thread_count());
  return pool;
}

ThreadPool::ThreadPool(int threads) { start_workers(threads); }

ThreadPool::~ThreadPool() { stop_workers(); }

void ThreadPool::start_workers(int threads) {
  D500_CHECK_MSG(threads >= 1, "thread pool needs >= 1 thread");
  // threads counts the calling thread; workers are the rest.
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = false;
  queue_.clear();
}

void ThreadPool::reset(int threads) {
  stop_workers();
  start_workers(threads);
}

void ThreadPool::enqueue(std::function<void()> job) {
  // Stamp the enqueue time only when someone will look at it: the
  // dequeue side samples "pool.queue_wait_ns" from the delta.
  const std::int64_t enq =
      metrics_enabled() ? metrics_detail::now_ns() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Job{std::move(job), enq});
  }
  cv_.notify_one();
}

void ThreadPool::record_queue_wait(std::int64_t enq_ns) {
  if (enq_ns == 0 || !metrics_enabled()) return;
  static Histogram& h =
      MetricsRegistry::instance().histogram("pool.queue_wait_ns");
  h.record(static_cast<double>(metrics_detail::now_ns() - enq_ns));
}

void ThreadPool::notify() { cv_.notify_all(); }

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      // The idle span brackets the cv wait; declared before the lock so its
      // end record is emitted after the unlock (off the contended path).
      TraceSpan idle("threadpool", "idle");
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    record_queue_wait(job.enq_ns);
    D500_TRACE_SCOPE("threadpool", "task");
    job.fn();
  }
}

void ThreadPool::help_while(const std::function<bool()>& done) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || done() || !queue_.empty(); });
      if (stopping_ || done()) {
        // Pass the baton: if jobs remain, make sure a worker (or another
        // helper) is woken to take the one our notify consumed.
        if (!queue_.empty()) cv_.notify_one();
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    record_queue_wait(job.enq_ns);
    D500_TRACE_SCOPE("threadpool", "task");
    job.fn();
  }
}

namespace {

/// Shared state of one parallel_for call. Chunks are claimed under the
/// mutex; the decomposition itself (nchunks, bounds) is fixed up front.
struct LoopState {
  std::mutex mu;
  std::condition_variable cv;
  std::int64_t next = 0;  // next unclaimed chunk
  std::int64_t nchunks = 0;
  int in_flight = 0;  // chunks currently executing
  bool error = false;
  std::exception_ptr eptr;
};

/// Claims and runs chunks until none remain (or an error aborts the loop).
/// Takes `fn` by pointer: stale helper jobs may run after the owning
/// parallel_for call returned, and must not even bind a dangling reference
/// (they find no chunks left and never dereference it).
void run_chunks(LoopState& st, std::int64_t begin, std::int64_t end,
                std::int64_t grain,
                const std::function<void(std::int64_t, std::int64_t)>* fn) {
  for (;;) {
    std::int64_t c;
    {
      std::lock_guard<std::mutex> lock(st.mu);
      if (st.error || st.next >= st.nchunks) return;
      c = st.next++;
      ++st.in_flight;
    }
    try {
      const std::int64_t lo = begin + c * grain;
      (*fn)(lo, std::min(lo + grain, end));
    } catch (...) {
      std::lock_guard<std::mutex> lock(st.mu);
      if (!st.error) {
        st.error = true;
        st.eptr = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(st.mu);
      --st.in_flight;
      if (st.in_flight == 0 && (st.error || st.next >= st.nchunks))
        st.cv.notify_all();
    }
  }
}

}  // namespace

void detail::parallel_for_impl(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  // The template wrapper (threadpool.hpp) handled the empty and serial
  // cases; here the range is non-empty, grain >= 1, and the pool has
  // workers to fan out to.
  const std::int64_t g = grain;
  const std::int64_t nchunks = (end - begin + g - 1) / g;
  ThreadPool& pool = ThreadPool::instance();
  auto st = std::make_shared<LoopState>();
  st->nchunks = nchunks;
  const int helpers = static_cast<int>(std::min<std::int64_t>(
      nchunks - 1, pool.num_threads() - 1));
  const auto* fnp = &fn;
  for (int h = 0; h < helpers; ++h)
    pool.enqueue([st, begin, end, g, fnp]() {
      // `*fnp` stays alive while chunks remain: the caller blocks below
      // until every claimed chunk finishes; helpers that arrive after that
      // find no chunks to claim and never dereference fnp.
      run_chunks(*st, begin, end, g, fnp);
    });

  run_chunks(*st, begin, end, g, &fn);
  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] {
      return st->in_flight == 0 && (st->error || st->next >= st->nchunks);
    });
    if (st->eptr) std::rethrow_exception(st->eptr);
  }
}

namespace {

struct GraphState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> deps;
  const std::vector<std::vector<int>>* unblocks = nullptr;
  const std::function<void(int)>* fn = nullptr;
  std::size_t completed = 0;
  std::size_t total = 0;
  int outstanding = 0;  // enqueued task closures not yet finished
  bool error = false;
  std::exception_ptr eptr;
  std::atomic<bool> finished{false};
};

void run_graph_task(const std::shared_ptr<GraphState>& st, int i);

void launch_graph_tasks(const std::shared_ptr<GraphState>& st,
                        const std::vector<int>& ready) {
  for (int r : ready)
    ThreadPool::instance().enqueue([st, r] { run_graph_task(st, r); });
}

void run_graph_task(const std::shared_ptr<GraphState>& st, int i) {
  bool skip;
  {
    std::lock_guard<std::mutex> lock(st->mu);
    skip = st->error;
  }
  if (!skip) {
    try {
      (*st->fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(st->mu);
      if (!st->error) {
        st->error = true;
        st->eptr = std::current_exception();
      }
    }
  }

  std::vector<int> ready;
  bool finished = false;
  {
    std::lock_guard<std::mutex> lock(st->mu);
    ++st->completed;
    if (!st->error)
      for (int c : (*st->unblocks)[static_cast<std::size_t>(i)])
        if (--st->deps[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    st->outstanding += static_cast<int>(ready.size()) - 1;
    if (st->outstanding == 0) {
      // Nothing running or queued: either the DAG is done, aborted on
      // error, or (defensively) stalled on a cycle.
      if (!st->error && st->completed != st->total) {
        st->error = true;
        st->eptr = std::make_exception_ptr(
            Error("run_task_graph: dependency graph stalled (cycle?)"));
      }
      finished = true;
    }
  }
  launch_graph_tasks(st, ready);
  if (finished) {
    st->finished.store(true, std::memory_order_release);
    st->cv.notify_all();
    ThreadPool::instance().notify();
  }
}

}  // namespace

void run_task_graph(const std::vector<std::vector<int>>& unblocks,
                    std::vector<int> deps,
                    const std::function<void(int)>& fn) {
  const std::size_t n = deps.size();
  D500_CHECK_MSG(unblocks.size() == n,
                 "run_task_graph: unblocks/deps size mismatch");
  if (n == 0) return;

  ThreadPool& pool = ThreadPool::instance();
  if (pool.num_threads() == 1) {
    // Serial path: FIFO over ready tasks, seeded in index order — a fixed,
    // deterministic topological schedule.
    std::deque<int> ready;
    for (std::size_t i = 0; i < n; ++i)
      if (deps[i] == 0) ready.push_back(static_cast<int>(i));
    std::size_t completed = 0;
    while (!ready.empty()) {
      const int i = ready.front();
      ready.pop_front();
      fn(i);
      ++completed;
      for (int c : unblocks[static_cast<std::size_t>(i)])
        if (--deps[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    }
    D500_CHECK_MSG(completed == n,
                   "run_task_graph: dependency graph stalled (cycle?)");
    return;
  }

  auto st = std::make_shared<GraphState>();
  st->deps = std::move(deps);
  st->unblocks = &unblocks;
  st->fn = &fn;
  st->total = n;
  std::vector<int> roots;
  for (std::size_t i = 0; i < n; ++i)
    if (st->deps[i] == 0) roots.push_back(static_cast<int>(i));
  D500_CHECK_MSG(!roots.empty(),
                 "run_task_graph: no ready tasks (cycle?)");
  st->outstanding = static_cast<int>(roots.size());
  launch_graph_tasks(st, roots);

  // The calling thread works the pool queue (graph tasks and any nested
  // parallel_for helpers) until the DAG drains.
  pool.help_while(
      [&] { return st->finished.load(std::memory_order_acquire); });
  std::lock_guard<std::mutex> lock(st->mu);
  if (st->eptr) std::rethrow_exception(st->eptr);
}

}  // namespace d500
