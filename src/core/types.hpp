// Fundamental descriptor types shared by all Deep500++ levels.
//
// `tensor_t` is the C-ABI-compatible tensor descriptor from the paper
// (§IV-B "Interoperability: Frameworks and Platforms"): a POD struct that can
// be passed across `extern "C"` boundaries between the meta-framework and the
// simulated frameworks, mirroring how the Python implementation passes
// descriptors through ctypes.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace d500 {

/// Element types supported by tensor descriptors. Deep500++ kernels compute in
/// float32 (as the paper's evaluation does), but descriptors carry the wider
/// set so format/conversion code paths are exercised.
enum class DType : std::int32_t {
  kFloat32 = 0,
  kFloat64 = 1,
  kInt32 = 2,
  kInt64 = 3,
  kUInt8 = 4,
  kBitset = 5,  // paper: tensordesc extends ONNX types with e.g. bitsets
};

inline std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::kFloat32: return 4;
    case DType::kFloat64: return 8;
    case DType::kInt32: return 4;
    case DType::kInt64: return 8;
    case DType::kUInt8: return 1;
    case DType::kBitset: return 1;
  }
  throw Error("dtype_size: unknown dtype");
}

inline const char* dtype_name(DType t) {
  switch (t) {
    case DType::kFloat32: return "float32";
    case DType::kFloat64: return "float64";
    case DType::kInt32: return "int32";
    case DType::kInt64: return "int64";
    case DType::kUInt8: return "uint8";
    case DType::kBitset: return "bitset";
  }
  return "?";
}

/// Data layout for 4-D image tensors.
enum class Layout : std::int32_t { kNCHW = 0, kNHWC = 1 };

/// Shape of a tensor: dimension sizes, outermost first.
using Shape = std::vector<std::int64_t>;

inline std::int64_t shape_elements(const Shape& s) {
  std::int64_t n = 1;
  for (auto d : s) {
    D500_CHECK_MSG(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}

inline std::string shape_to_string(const Shape& s) {
  std::string out = "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(s[i]);
  }
  return out + "]";
}

/// Maximum rank representable in the C-ABI descriptor.
inline constexpr int kMaxRank = 8;

/// C-ABI compatible tensor descriptor (paper: `deep500::tensor_t`).
/// Plain-old-data so it can cross `extern "C"` boundaries; carries an
/// unowned data pointer plus type/shape/layout information.
struct tensor_t {
  void* data = nullptr;
  std::int32_t dtype = static_cast<std::int32_t>(DType::kFloat32);
  std::int32_t layout = static_cast<std::int32_t>(Layout::kNCHW);
  std::int32_t rank = 0;
  std::int64_t dims[kMaxRank] = {0};

  std::int64_t elements() const {
    std::int64_t n = 1;
    for (int i = 0; i < rank; ++i) n *= dims[i];
    return n;
  }
};
static_assert(std::is_standard_layout_v<tensor_t>,
              "tensor_t must remain C-ABI compatible");
static_assert(std::is_trivially_copyable_v<tensor_t>,
              "tensor_t must remain C-ABI compatible");

/// Builds a descriptor (shape only, no data) — analogous to the Python
/// `d5.tensordesc(...)` helper in paper Listing 4.
inline tensor_t tensordesc(DType dt, const Shape& shape,
                           Layout layout = Layout::kNCHW) {
  D500_CHECK_MSG(shape.size() <= kMaxRank, "rank exceeds kMaxRank");
  tensor_t t;
  t.dtype = static_cast<std::int32_t>(dt);
  t.layout = static_cast<std::int32_t>(layout);
  t.rank = static_cast<std::int32_t>(shape.size());
  for (std::size_t i = 0; i < shape.size(); ++i) t.dims[i] = shape[i];
  return t;
}

inline Shape desc_shape(const tensor_t& t) {
  return Shape(t.dims, t.dims + t.rank);
}

/// Kind of compute device a framework or operator targets. The paper uses
/// extensible device descriptors to pick the most advantageous device per
/// operator; in this reproduction all devices execute on the host CPU, but
/// the descriptor still selects backend/overhead profiles.
enum class DeviceKind : std::int32_t { kCPU = 0, kGPU = 1, kFPGA = 2, kASIC = 3 };

/// Device descriptor (paper §IV-B).
struct DeviceDesc {
  DeviceKind kind = DeviceKind::kCPU;
  int index = 0;
  std::string name = "cpu0";

  bool operator==(const DeviceDesc&) const = default;
};

}  // namespace d500
