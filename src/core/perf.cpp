#include "core/perf.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/env.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace d500 {

namespace {

std::atomic<bool> g_force_fallback{false};

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if defined(__linux__)
double tv_seconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

void thread_rusage(double* user_s, double* sys_s, std::int64_t* max_rss_kb) {
  rusage ru{};
  // RUSAGE_THREAD: the measuring thread's own CPU time, matching the
  // per-thread scope of the perf group.
  if (getrusage(RUSAGE_THREAD, &ru) == 0) {
    *user_s = tv_seconds(ru.ru_utime);
    *sys_s = tv_seconds(ru.ru_stime);
  }
  rusage rp{};
  if (getrusage(RUSAGE_SELF, &rp) == 0) *max_rss_kb = rp.ru_maxrss;
}

long perf_open(std::uint32_t type, std::uint64_t config, int group_fd,
               bool leader) {
  perf_event_attr attr{};
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = leader ? 1 : 0;  // the group toggles through the leader
  attr.exclude_kernel = 1;         // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return syscall(SYS_perf_event_open, &attr, 0 /*this thread*/,
                 -1 /*any cpu*/, group_fd, 0);
}
#else
void thread_rusage(double* user_s, double* sys_s, std::int64_t* max_rss_kb) {
  (void)user_s;
  (void)sys_s;
  (void)max_rss_kb;
}
#endif

}  // namespace

bool perf_events_allowed() {
  if (g_force_fallback.load(std::memory_order_relaxed)) return false;
#if defined(__linux__)
  const std::string mode = perf_setting();
  return !(mode == "off" || mode == "0");
#else
  return false;
#endif
}

void perf_force_fallback(bool on) {
  g_force_fallback.store(on, std::memory_order_relaxed);
}

PerfRegion::PerfRegion() {
#if defined(__linux__)
  if (!perf_events_allowed()) return;
  static const struct {
    std::uint64_t config;
  } events[kEvents] = {{PERF_COUNT_HW_CPU_CYCLES},
                       {PERF_COUNT_HW_INSTRUCTIONS},
                       {PERF_COUNT_HW_CACHE_MISSES},
                       {PERF_COUNT_HW_BRANCH_MISSES}};
  bool ok = true;
  for (int i = 0; i < kEvents && ok; ++i) {
    const long fd = perf_open(PERF_TYPE_HARDWARE, events[i].config,
                              i == 0 ? -1 : fds_[0], i == 0);
    if (fd < 0) {
      ok = false;
      break;
    }
    fds_[i] = static_cast<int>(fd);
  }
  if (!ok) {
    // Graceful degradation: close whatever opened and run in fallback
    // mode. Containers with perf_event_paranoid locked down land here.
    for (int i = 0; i < kEvents; ++i) {
      if (fds_[i] >= 0) close(fds_[i]);
      fds_[i] = -1;
    }
    return;
  }
  available_ = true;
#endif
}

PerfRegion::~PerfRegion() {
#if defined(__linux__)
  for (int i = 0; i < kEvents; ++i)
    if (fds_[i] >= 0) close(fds_[i]);
#endif
}

PerfRegion::Reading PerfRegion::read_group() const {
  Reading r;
#if defined(__linux__)
  if (!available_) return r;
  r.ok = true;
  for (int i = 0; i < kEvents; ++i) {
    // value, time_enabled, time_running per fd (read_format above).
    std::uint64_t buf[3] = {};
    if (read(fds_[i], buf, sizeof(buf)) != sizeof(buf)) {
      r.ok = false;
      return r;
    }
    // Multiplex scaling: if the PMU ran this event for only part of the
    // enabled window, extrapolate. running == 0 means never scheduled.
    const double scale =
        buf[2] > 0 ? static_cast<double>(buf[1]) / static_cast<double>(buf[2])
                   : 0.0;
    r.values[i] = static_cast<double>(buf[0]) * scale;
  }
#endif
  return r;
}

void PerfRegion::begin() {
#if defined(__linux__)
  if (available_) {
    ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    begin_reading_ = Reading{};  // deltas from zero after the reset
    begin_reading_.ok = true;
  }
#endif
  std::int64_t rss = 0;
  thread_rusage(&begin_user_s_, &begin_sys_s_, &rss);
  begin_wall_ns_ = wall_ns();
}

PerfCounts PerfRegion::end() {
  PerfCounts c;
  c.wall_s = static_cast<double>(wall_ns() - begin_wall_ns_) * 1e-9;
  double user = 0.0, sys = 0.0;
  thread_rusage(&user, &sys, &c.max_rss_kb);
  c.user_s = user - begin_user_s_;
  c.sys_s = sys - begin_sys_s_;
#if defined(__linux__)
  if (available_) {
    const Reading r = read_group();
    ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    if (r.ok) {
      c.perf_available = true;
      c.cycles = r.values[0] - begin_reading_.values[0];
      c.instructions = r.values[1] - begin_reading_.values[1];
      c.cache_misses = r.values[2] - begin_reading_.values[2];
      c.branch_misses = r.values[3] - begin_reading_.values[3];
    }
  }
#endif
  return c;
}

std::string PerfCounts::to_string() const {
  char buf[192];
  if (perf_available) {
    std::snprintf(buf, sizeof(buf),
                  "ipc=%.2f cache-mpki=%.2f branch-mpki=%.2f cycles=%.3g "
                  "instr=%.3g wall=%.3fs",
                  ipc(), cache_mpki(), branch_mpki(), cycles, instructions,
                  wall_s);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "perf unavailable (fallback): wall=%.3fs user=%.3fs "
                  "sys=%.3fs rss=%lld KB",
                  wall_s, user_s, sys_s,
                  static_cast<long long>(max_rss_kb));
  }
  return buf;
}

}  // namespace d500
