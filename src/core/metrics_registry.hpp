// Process-wide metrics registry: counters, gauges, and mergeable
// log-bucketed latency histograms, sharded per thread.
//
// This is the numeric companion to the trace subsystem (core/trace): where
// a trace records *when* things happened (spans on a timeline), the
// registry records *distributions* — per-op latency percentiles, queue
// waits, collective times — at a cost low enough to leave on in
// production-shaped runs. Hot-path writes touch only the calling thread's
// shard (relaxed atomics on a cache line no other writer shares), so
// concurrent writers never contend; a snapshot merges the shards, which is
// exact for bucket counts and sums because every write is a single atomic
// add.
//
// Histograms are log-bucketed: kSubBuckets linear sub-buckets per power of
// two, giving a fixed relative resolution (<= ~6% at 8 sub-buckets) over
// the full range from nanoseconds to minutes, in ~4.5 KB per shard.
// Percentile extraction (p50/p95/p99) walks the merged buckets and returns
// the midpoint of the bucket containing the rank — within one bucket of
// the exact order statistic by construction, which tests assert against
// core/stats' quantile().
//
// Toggle: D500_METRICS (default on; "0"/"off" disables). When disabled,
// every instrumentation site costs one relaxed atomic load and a branch —
// the same always-on contract the tracer makes. Tests and benches flip the
// gate with MetricsRegistry::enable()/disable().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace d500 {

namespace metrics_detail {
/// 0 = uninitialized (resolve from D500_METRICS), 1 = off, 2 = on.
extern std::atomic<int> g_state;
bool init_from_env();
/// Steady-clock nanoseconds since the process metrics epoch.
std::int64_t now_ns();
}  // namespace metrics_detail

/// Hot-path gate: one relaxed load and one branch when metrics are off.
inline bool metrics_enabled() {
  const int s = metrics_detail::g_state.load(std::memory_order_relaxed);
  if (s == 0) return metrics_detail::init_from_env();  // once per process
  return s == 2;
}

/// Shard-slot cap. Threads beyond the cap share slots (writes stay correct
/// — every update is an atomic RMW — they just contend a little).
inline constexpr int kMetricShards = 64;

namespace metrics_detail {
/// Small dense per-thread slot id, assigned on first use, wrapped to the
/// shard cap.
int thread_slot();
}  // namespace metrics_detail

/// Monotonic counter (events, bytes). Sharded per thread; value() sums the
/// shards, so it is exact once writers quiesce and a live lower bound while
/// they run.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    shard().fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const;
  const std::string& name() const { return name_; }

  /// Test hook (see MetricsRegistry::reset for the quiescence contract).
  void reset();

 private:
  std::atomic<std::uint64_t>& shard();

  std::string name_;
  std::array<std::atomic<std::uint64_t>, kMetricShards> shards_{};
};

/// Last-written value (queue depth, cache occupancy). A single atomic cell:
/// gauges are "current level" metrics where last-writer-wins is the right
/// merge.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Merged view of one histogram at one instant. Counts are derived from the
/// bucket array so the snapshot is self-consistent even while writers run.
struct HistogramSnapshot {
  std::string name;
  std::string unit;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;
  std::vector<std::uint64_t> buckets;

  /// Order-statistic estimate: midpoint of the bucket holding rank
  /// ceil(q * count). Within one bucket of the exact quantile.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Log-bucketed histogram of positive values (latencies in ns by
/// convention; the unit string is carried for reporting only).
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;   // per power of two
  static constexpr int kMinExp = -30;     // values below 2^-30 clamp to slot 0
  static constexpr int kMaxExp = 40;      // values >= 2^40 clamp to the top
  static constexpr int kBuckets = (kMaxExp - kMinExp) * kSubBuckets + 2;

  Histogram(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}
  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v);

  HistogramSnapshot snapshot() const;
  /// Arbitrary-quantile convenience over a fresh shard merge: lets callers
  /// report p99.9 (or any q) without the registry growing new hardcoded
  /// percentile fields. Taking one snapshot() and querying it repeatedly is
  /// cheaper when several quantiles of the same instant are needed.
  double quantile(double q) const { return snapshot().quantile(q); }
  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }
  void reset();

  /// Bucket geometry, exposed for the within-one-bucket accuracy tests.
  static int bucket_of(double v);
  static double bucket_lo(int idx);
  static double bucket_hi(int idx);
  static double bucket_mid(int idx) {
    return 0.5 * (bucket_lo(idx) + bucket_hi(idx));
  }

 private:
  struct Shard {
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  // valid when count > 0
    std::atomic<double> max{0.0};
    std::atomic<std::uint64_t> count{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };

  Shard& shard();

  std::string name_;
  std::string unit_;
  std::array<std::atomic<Shard*>, kMetricShards> shards_{};
};

/// RAII latency sample into a histogram (nanoseconds). The histogram
/// pointer may be null (site resolved with metrics off); the gate is also
/// re-checked at construction so a disabled run pays only the branch.
class LatencyScope {
 public:
  explicit LatencyScope(Histogram* h)
      : h_(h != nullptr && metrics_enabled() ? h : nullptr),
        t0_(h_ != nullptr ? metrics_detail::now_ns() : 0) {}
  explicit LatencyScope(Histogram& h) : LatencyScope(&h) {}
  ~LatencyScope() {
    if (h_ != nullptr)
      h_->record(static_cast<double>(metrics_detail::now_ns() - t0_));
  }
  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

 private:
  Histogram* h_;
  std::int64_t t0_;
};

/// Process-wide registry. Metric objects are created on first lookup and
/// immortal (the registry is a leaked singleton, like the trace rings), so
/// cached references/pointers never dangle — including in atexit paths.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::string_view unit = "ns");

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  /// Name-sorted snapshot of every registered metric. Safe to call while
  /// writers run (each metric merges its shards atomically).
  Snapshot snapshot() const;

  /// Per-category roll-up rendered with core/table: histograms with
  /// count/p50/p95/p99/max, then counters and gauges. Empty string when no
  /// metric has data.
  std::string summary_text() const;

  /// JSON object fragment ({"histograms":{...},"counters":{...},...}) for
  /// embedding in trace exports and bench reports.
  std::string snapshot_json() const;

  /// Turns emission on/off process-wide (overrides D500_METRICS).
  static void enable();
  static void disable();

  /// Zeroes every metric. Test hook: like Trace::reset, must not be called
  /// while other threads are emitting.
  void reset();

 private:
  MetricsRegistry() = default;

  struct Impl;
  Impl& impl() const;
};

}  // namespace d500
