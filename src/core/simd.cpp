#include "core/simd.hpp"

#include <atomic>

#include "core/env.hpp"

namespace d500::simd {

namespace {

KernelDispatch parse_dispatch() {
  const std::string s = kernel_dispatch_setting();
  if (s == "scalar") return KernelDispatch::kScalar;
  if (s == "simd") return KernelDispatch::kSimd;
  return KernelDispatch::kAuto;
}

// Relaxed is enough: tests/benches flip the mode between kernel launches,
// never concurrently with one.
std::atomic<KernelDispatch>& dispatch_state() {
  static std::atomic<KernelDispatch> d{parse_dispatch()};
  return d;
}

}  // namespace

const char* isa_name() {
#if defined(__AVX512F__)
  return "avx512f";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

KernelDispatch kernel_dispatch() {
  return dispatch_state().load(std::memory_order_relaxed);
}

void set_kernel_dispatch(KernelDispatch d) {
  dispatch_state().store(d, std::memory_order_relaxed);
}

const char* kernel_dispatch_name(KernelDispatch d) {
  switch (d) {
    case KernelDispatch::kScalar: return "scalar";
    case KernelDispatch::kSimd: return "simd";
    default: return "auto";
  }
}

bool dispatch_simd() {
  if (kNativeWidth == 1) return false;
  return kernel_dispatch() != KernelDispatch::kScalar;
}

}  // namespace d500::simd
