// Provenance-stamped benchmark reports and the CI-overlap regression diff.
//
// Every bench binary writes one BENCH_*.json through this writer instead of
// hand-rolled ofstream emission. The envelope is a versioned contract:
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "timestamp_utc": "...",
//     "provenance": { git SHA + dirty flag, hostname, CPU model/flags/
//                     logical count, pool thread count, every D500_* env
//                     var, and the resolved knob values (scale, seed,
//                     kernel, gemm, arena, passes, overlap, bucket_kb,
//                     metrics, perf) },
//     "metrics": { name -> {kind: summary|scalar|flag, unit, better,
//                           median/ci95 or value} },
//     "hw":      { name -> perf counter sample (ipc, mpki, ...) },
//     "runtime_metrics": MetricsRegistry snapshot (histogram percentiles),
//     "extra":   free-form bench-specific detail
//   }
//
// "summary" metrics carry core/stats' median + nonparametric 95% CI;
// diff_reports applies the paper's §V-B criterion — two runs are
// statistically indistinguishable when the CIs overlap — to decide
// regressions, which is what the ci-bench-smoke workflow gates on.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/perf.hpp"
#include "core/stats.hpp"

namespace d500 {

struct Json;

/// Which direction of change is an improvement for a metric. kNone makes
/// the metric informational (never gates).
enum class Better { kLower, kHigher, kNone };

/// Host / build / configuration identity captured once per process.
struct Provenance {
  std::string git_sha;       // "unknown" when not in a git checkout
  bool git_dirty = false;
  std::string hostname;
  std::string cpu_model;
  int cpu_logical = 0;
  std::vector<std::string> cpu_flags;  // interesting ISA subset
  int pool_threads = 0;                // shared ThreadPool size
  std::vector<std::pair<std::string, std::string>> env;  // all D500_* vars

  /// Collected once and cached (git subprocess, /proc/cpuinfo parse).
  static const Provenance& collect();
};

/// Builder for one benchmark report. Metric insertion order is preserved.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  /// Full sample statistics (median + 95% CI) — the only kind the CI diff
  /// gates with the CI-overlap criterion.
  void add_summary(const std::string& name, const SampleSummary& s,
                   const std::string& unit, Better better = Better::kLower);

  /// Single number (GFLOP/s, bytes). Gated by relative tolerance when
  /// `better` is directional.
  void add_scalar(const std::string& name, double value,
                  const std::string& unit, Better better = Better::kNone);

  /// Boolean invariant (bitwise identity, shape checks). A true -> false
  /// transition between reports is always a regression.
  void add_flag(const std::string& name, bool ok);

  /// Hardware counter sample for a named region (bench_l0_gemm kernels).
  void add_perf(const std::string& name, const PerfCounts& counts);

  /// Attaches the process MetricsRegistry snapshot (histogram percentiles
  /// et al.) under "runtime_metrics".
  void add_runtime_metrics();

  /// Free-form bench-specific payload; must be a rendered JSON object.
  void set_extra_json(std::string raw_object);

  std::string to_json() const;

  /// Writes to_json() to `path` and prints "wrote <path>" on stdout.
  /// Returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Metric {
    enum class Kind { kSummary, kScalar, kFlag };
    Kind kind = Kind::kScalar;
    std::string name;
    std::string unit;
    Better better = Better::kNone;
    SampleSummary summary;
    double value = 0.0;
    bool flag = false;
  };
  struct PerfEntry {
    std::string name;
    PerfCounts counts;
  };

  std::string bench_name_;
  std::vector<Metric> metrics_;
  std::vector<PerfEntry> perf_;
  std::string runtime_metrics_json_;
  std::string extra_json_;
};

/// One metric's comparison outcome.
struct ReportDiffLine {
  std::string name;
  std::string verdict;  // "ok" | "improved" | "REGRESSED" | "new" | "gone"
  std::string detail;
};

struct ReportDiffOptions {
  /// Minimum relative median change for a CI-disjoint summary shift to
  /// count (damps one-bucket CI flukes on fast runs).
  double rel_tol = 0.02;
  /// Relative tolerance for directional scalar metrics.
  double scalar_tol = 0.10;
  /// Per-metric direction overrides (bench_diff --direction name=lower).
  /// Takes precedence over the direction stamped in the report, so the
  /// CI-overlap gate can treat lower-is-better metrics (latency
  /// percentiles in BENCH_serving.json) as such even when an emitter left
  /// them informational — and can silence a stamped direction with kNone.
  std::vector<std::pair<std::string, Better>> direction;
};

struct ReportDiff {
  bool comparable = false;  // schemas parsed and bench names matched
  std::string incomparable_reason;
  int regressions = 0;
  int improvements = 0;
  std::vector<ReportDiffLine> lines;

  /// Rendered comparison table plus a one-line verdict.
  std::string to_text() const;
};

/// Compares two parsed reports metric-by-metric: summary metrics regress
/// when the new median is worse, the 95% CIs do not overlap (paper §V-B),
/// and the relative change exceeds rel_tol; flags regress on true->false;
/// directional scalars regress beyond scalar_tol. Metrics present in only
/// one report are noted, never gated.
ReportDiff diff_reports(const Json& old_report, const Json& new_report,
                        const ReportDiffOptions& opts = {});

}  // namespace d500
