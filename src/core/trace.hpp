// Always-on tracing runtime (paper §VI-A: white-box instrumentation at <1%
// overhead).
//
// Every thread that emits owns a private lock-free ring buffer of
// fixed-size 64-byte records (span begin/end, counter, instant) stamped
// from one process-wide steady-clock domain. Emission is a handful of
// relaxed atomic word stores into the thread's own ring — no locks, no
// allocation, no cross-thread contention on the hot path — and when the
// ring fills, the oldest records are overwritten (dropped records are
// counted, never blocked on). A collector merges the per-thread rings
// into Chrome trace-event JSON (loadable in Perfetto / chrome://tracing)
// plus a per-category summary table.
//
// Toggles: D500_TRACE=<path> enables tracing at startup and writes the
// JSON to <path> at process exit; D500_TRACE_BUFSZ sizes the per-thread
// ring in records (default 65536, rounded up to a power of two). Tests
// and benches can flip tracing programmatically with Trace::enable() /
// Trace::disable().
//
// When tracing is disabled every instrumentation site costs one relaxed
// atomic load and one predictable branch — cheap enough to leave compiled
// into every layer unconditionally ("always-on").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace d500 {

/// Record kinds, mapping 1:1 onto the Chrome trace-event phases they
/// export as ("B"/"E" duration events, "C" counters, "i" instants).
enum class TraceKind : std::uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kCounter = 2,
  kInstant = 3,
};

/// Inline name capacity (including the NUL); longer names are truncated.
inline constexpr std::size_t kTraceNameCap = 32;

/// One fixed-size trace record. `category` must be a string literal (the
/// pointer is stored, not the characters); `name` is copied inline so
/// dynamic strings (operator names) are safe to pass.
struct TraceRecord {
  std::int64_t ts_ns = 0;         // steady-clock ns since the trace epoch
  double value = 0.0;             // counter payload
  const char* category = nullptr; // static string literal
  char name[kTraceNameCap] = {};  // NUL-terminated, truncated copy
  TraceKind kind = TraceKind::kInstant;
  char pad_[7] = {};
};
static_assert(sizeof(TraceRecord) == 64, "records are 8 atomic words");

namespace trace_detail {
/// 0 = uninitialized (resolve from D500_TRACE), 1 = off, 2 = on.
extern std::atomic<int> g_state;
bool init_from_env();
void emit(TraceKind kind, const char* category, std::string_view name,
          double value);
}  // namespace trace_detail

/// Hot-path gate: one relaxed load and one branch when tracing is off.
inline bool trace_enabled() {
  const int s = trace_detail::g_state.load(std::memory_order_relaxed);
  if (s == 0) return trace_detail::init_from_env();  // once per process
  return s == 2;
}

/// Counter sample (e.g. queue depth, cumulative bytes). No-op when
/// tracing is disabled.
inline void trace_counter(const char* category, std::string_view name,
                          double value) {
  if (trace_enabled())
    trace_detail::emit(TraceKind::kCounter, category, name, value);
}

/// Zero-duration marker.
inline void trace_instant(const char* category, std::string_view name) {
  if (trace_enabled())
    trace_detail::emit(TraceKind::kInstant, category, name, 0.0);
}

/// RAII span: emits a begin record at construction and the matching end
/// record at scope exit, into the emitting thread's ring. When tracing is
/// disabled, construction is the single gate branch and destruction tests
/// a local flag.
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string_view name) {
    if (trace_enabled()) open(category, name);
  }
  ~TraceSpan() {
    if (category_ != nullptr) close();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(const char* category, std::string_view name);
  void close();

  const char* category_ = nullptr;  // non-null while a span is open
  char name_[kTraceNameCap] = {};
};

/// Collector over every thread's ring buffer.
class Trace {
 public:
  /// Enables tracing process-wide. `buffer_records` resizes the
  /// per-thread rings (rounded up to a power of two; 0 keeps the current
  /// env-configured capacity). Like ThreadPool::reset, must not be called
  /// while other threads are emitting (rings may be reallocated).
  static void enable(std::size_t buffer_records = 0);

  /// Disables emission. Already-recorded events stay collectable.
  static void disable();

  /// Clears every ring and its drop counters (test hook; same quiescence
  /// requirement as enable()).
  static void reset();

  /// One thread's retained window, oldest record first.
  struct ThreadTrace {
    int tid = 0;                       // registration order; main is 0
    std::uint64_t emitted = 0;         // records ever written
    std::uint64_t dropped = 0;         // overwritten by ring wraparound
    std::vector<TraceRecord> records;  // newest min(emitted, capacity)
  };

  /// Snapshots every ring, including those of exited threads. Safe to run
  /// while other threads emit: slots overwritten mid-read are counted as
  /// dropped rather than returned torn.
  static std::vector<ThreadTrace> collect();

  /// Chrome trace-event JSON: {"traceEvents":[...]}, one event per line,
  /// loadable in Perfetto. Includes thread_name metadata events.
  static std::string to_chrome_json();

  /// Per-category roll-up (span count / total span ms / counter and
  /// instant counts) rendered with core/table, plus a drop-count line.
  static std::string summary();

  /// Writes to_chrome_json() to `path`. Returns false on I/O failure.
  static bool write(const std::string& path);
};

#define D500_TRACE_CONCAT_IMPL(a, b) a##b
#define D500_TRACE_CONCAT(a, b) D500_TRACE_CONCAT_IMPL(a, b)

/// Span covering the enclosing scope. `category` must be a string
/// literal; `name` may be any string (copied).
#define D500_TRACE_SCOPE(category, name) \
  ::d500::TraceSpan D500_TRACE_CONCAT(d500_trace_scope_, __LINE__)(category, \
                                                                   name)

}  // namespace d500
