#include "core/serialize.hpp"

#include <cstring>
#include <fstream>

#include "core/error.hpp"

namespace d500 {

void BinaryWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  u32(bits);
}

void BinaryWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  u64(bits);
}

void BinaryWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BinaryWriter::str(const std::string& s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void BinaryWriter::raw(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void BinaryReader::need(std::size_t n) {
  if (data_.size() - pos_ < n)
    throw FormatError("BinaryReader: truncated input (need " +
                      std::to_string(n) + " bytes at offset " +
                      std::to_string(pos_) + ")");
}

std::uint8_t BinaryReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t BinaryReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

float BinaryReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

double BinaryReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::uint64_t BinaryReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    need(1);
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64)
      throw FormatError("BinaryReader: varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

std::string BinaryReader::str() {
  const std::uint64_t n = varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> BinaryReader::bytes() {
  const std::uint64_t n = varint();
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void BinaryReader::raw(void* out, std::size_t n) {
  need(n);
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("write_file: cannot open " + path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) throw Error("write_file: write failed for " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw Error("read_file: cannot open " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  if (!f) throw Error("read_file: read failed for " + path);
  return data;
}

}  // namespace d500
