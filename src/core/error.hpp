// Error handling for Deep500++.
//
// All precondition violations throw d500::Error with a formatted message.
// Benchmark and test code may additionally use D500_CHECK for invariants that
// should hold in release builds (they are not compiled out).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace d500 {

/// Base exception for all Deep500++ errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when tensor shapes are inconsistent with an operator's contract.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown when a simulated allocation exceeds the configured memory budget
/// (used by the micro-batching experiment to reproduce framework OOMs).
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed model files / containers.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "D500_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace d500

#define D500_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr))                                                       \
      ::d500::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define D500_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << msg;                                                      \
      ::d500::detail::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                  \
  } while (0)
