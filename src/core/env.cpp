#include "core/env.hpp"

#include <cstdlib>
#include <filesystem>

#include "core/error.hpp"

namespace d500 {

namespace {
bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
}  // namespace

BenchScale bench_scale() {
  static const BenchScale scale = [] {
    if (env_flag("D500_FAST")) return BenchScale::kFast;
    if (env_flag("D500_FULL")) return BenchScale::kFull;
    return BenchScale::kDefault;
  }();
  return scale;
}

std::uint64_t bench_seed() {
  static const std::uint64_t seed = [] {
    if (const char* v = std::getenv("D500_SEED"))
      return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    return std::uint64_t{0xD500'2019'0613'0001ULL};
  }();
  return seed;
}

std::string trace_path() {
  const char* v = std::getenv("D500_TRACE");
  return v != nullptr ? std::string(v) : std::string();
}

std::string arena_mode_setting() {
  const char* v = std::getenv("D500_ARENA");
  return v != nullptr ? std::string(v) : std::string("arena");
}

std::string kernel_dispatch_setting() {
  const char* v = std::getenv("D500_KERNEL");
  return v != nullptr ? std::string(v) : std::string("auto");
}

std::string gemm_backend_setting() {
  const char* v = std::getenv("D500_GEMM");
  return v != nullptr ? std::string(v) : std::string("packed");
}

std::string gemm_epilogue_setting() {
  const char* v = std::getenv("D500_GEMM_EPILOGUE");
  return v != nullptr ? std::string(v) : std::string("fused");
}

bool overlap_comm_setting() { return env_flag("D500_OVERLAP"); }

std::string passes_setting() {
  const char* v = std::getenv("D500_PASSES");
  return v != nullptr ? std::string(v) : std::string("all");
}

std::size_t bucket_cap_bytes() {
  if (const char* v = std::getenv("D500_BUCKET_KB")) {
    const auto kb = std::strtoull(v, nullptr, 10);
    if (kb > 0) return static_cast<std::size_t>(kb) * 1024;
  }
  return std::size_t{1024} * 1024;
}

bool metrics_setting() {
  const char* v = std::getenv("D500_METRICS");
  if (v == nullptr) return true;
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "OFF" || s == "false");
}

std::string perf_setting() {
  const char* v = std::getenv("D500_PERF");
  return v != nullptr ? std::string(v) : std::string("auto");
}

std::int64_t serve_max_batch() {
  if (const char* v = std::getenv("D500_SERVE_MAX_BATCH")) {
    const auto n = std::strtoll(v, nullptr, 10);
    if (n > 0) return n;
  }
  return 32;
}

std::int64_t serve_deadline_us() {
  if (const char* v = std::getenv("D500_SERVE_DEADLINE_US")) {
    const auto n = std::strtoll(v, nullptr, 10);
    if (n > 0) return n;
  }
  return 2000;
}

int serve_sessions_setting() {
  if (const char* v = std::getenv("D500_SERVE_SESSIONS")) {
    const auto n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<int>(n);
  }
  return 2;
}

std::string serve_policy_setting() {
  const char* v = std::getenv("D500_SERVE_POLICY");
  return v != nullptr ? std::string(v) : std::string("adaptive");
}

std::string serve_buckets_setting() {
  const char* v = std::getenv("D500_SERVE_BUCKETS");
  return v != nullptr ? std::string(v) : std::string("1,2,4,8,16,32");
}

bool faults_enabled_setting() {
  const bool on = env_flag("D500_FAULTS");
  if (!on) {
    // Misconfiguration must fail loudly: a schedule knob without the
    // master switch would otherwise silently run fault-free.
    static const char* const knobs[] = {
        "D500_FAULT_SEED",      "D500_FAULT_DROP",    "D500_FAULT_RETRIES",
        "D500_FAULT_TIMEOUT_US", "D500_FAULT_SLOW_RANK", "D500_FAULT_SLOW_US",
        "D500_FAULT_LATE"};
    for (const char* k : knobs)
      D500_CHECK_MSG(std::getenv(k) == nullptr,
                     k << " is set but D500_FAULTS is not — set D500_FAULTS=1 "
                          "to enable fault injection");
  }
  return on;
}

std::uint64_t fault_seed_setting() {
  if (const char* v = std::getenv("D500_FAULT_SEED"))
    return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
  return 0;
}

double fault_drop_setting() {
  if (const char* v = std::getenv("D500_FAULT_DROP")) {
    const double p = std::strtod(v, nullptr);
    D500_CHECK_MSG(p >= 0.0 && p < 1.0,
                   "D500_FAULT_DROP must be in [0, 1), got " << p);
    return p;
  }
  return 0.0;
}

int fault_retries_setting() {
  if (const char* v = std::getenv("D500_FAULT_RETRIES")) {
    const auto n = std::strtol(v, nullptr, 10);
    D500_CHECK_MSG(n >= 0, "D500_FAULT_RETRIES must be >= 0");
    return static_cast<int>(n);
  }
  return 3;
}

std::int64_t fault_timeout_us_setting() {
  if (const char* v = std::getenv("D500_FAULT_TIMEOUT_US")) {
    const auto n = std::strtoll(v, nullptr, 10);
    D500_CHECK_MSG(n >= 0, "D500_FAULT_TIMEOUT_US must be >= 0");
    return n;
  }
  return 50;
}

int fault_slow_rank_setting() {
  if (const char* v = std::getenv("D500_FAULT_SLOW_RANK"))
    return static_cast<int>(std::strtol(v, nullptr, 10));
  return -1;
}

std::int64_t fault_slow_us_setting() {
  if (const char* v = std::getenv("D500_FAULT_SLOW_US")) {
    const auto n = std::strtoll(v, nullptr, 10);
    D500_CHECK_MSG(n >= 0, "D500_FAULT_SLOW_US must be >= 0");
    return n;
  }
  return 200;
}

double fault_late_setting() {
  if (const char* v = std::getenv("D500_FAULT_LATE")) {
    const double p = std::strtod(v, nullptr);
    D500_CHECK_MSG(p >= 0.0 && p < 1.0,
                   "D500_FAULT_LATE must be in [0, 1), got " << p);
    return p;
  }
  return 0.0;
}

std::int64_t staleness_setting() {
  if (const char* v = std::getenv("D500_STALENESS")) {
    const auto n = std::strtoll(v, nullptr, 10);
    D500_CHECK_MSG(n >= 0, "D500_STALENESS must be >= 0");
    return n;
  }
  return 1;
}

std::size_t trace_buffer_records() {
  if (const char* v = std::getenv("D500_TRACE_BUFSZ")) {
    const auto n = std::strtoull(v, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 65536;
}

std::string scratch_dir() {
  static const std::string dir = [] {
    std::string d = "/tmp/d500";
    if (const char* v = std::getenv("D500_TMPDIR")) d = v;
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

}  // namespace d500
