#include "core/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace d500 {

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // JSON has no trailing-dot or leading-dot forms to worry about from %g,
  // but "inf"/"nan" were excluded above.
  return buf;
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma/indent
  }
  if (comma_stack_.back()) out_ += ',';
  comma_stack_.back() = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  comma_stack_.push_back(false);
}

void JsonWriter::end_object() {
  comma_stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  comma_stack_.push_back(false);
}

void JsonWriter::end_array() {
  comma_stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  if (comma_stack_.back()) out_ += ',';
  comma_stack_.back() = true;
  out_ += '"';
  json_escape(out_, k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  json_escape(out_, s);
  out_ += '"';
}

void JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
}

void JsonWriter::null() {
  before_value();
  out_ += "null";
}

void JsonWriter::raw(std::string_view fragment) {
  before_value();
  out_ += fragment;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty())
      error = msg + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = Json::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_literal(out);
    if (c == 'n') return parse_literal(out);
    return parse_number(out);
  }

  bool parse_literal(Json& out) {
    auto match = [&](std::string_view lit) {
      if (text.substr(pos, lit.size()) != lit) return false;
      pos += lit.size();
      return true;
    };
    if (match("true")) {
      out.kind = Json::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.kind = Json::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.kind = Json::Kind::kNull;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    if (pos == start) return fail("invalid value");
    const std::string tok(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("invalid number");
    out.kind = Json::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs in report
            // files do not occur; a lone surrogate encodes as-is).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(Json& out) {
    if (!consume('[')) return false;
    out.kind = Json::Kind::kArray;
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      Json item;
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_object(Json& out) {
    if (!consume('{')) return false;
    out.kind = Json::Kind::kObject;
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      Json val;
      if (!parse_value(val)) return false;
      out.members.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }
};

}  // namespace

Json Json::parse(std::string_view text, std::string* err) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out)) {
    if (err != nullptr) *err = p.error;
    return Json{};
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (err != nullptr)
      *err = "trailing garbage at byte " + std::to_string(p.pos);
    return Json{};
  }
  if (err != nullptr) err->clear();
  return out;
}

const Json* Json::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

double Json::num_or(std::string_view key, double def) const {
  const Json* j = find(key);
  return j != nullptr && j->kind == Kind::kNumber ? j->number : def;
}

std::string Json::str_or(std::string_view key, std::string def) const {
  const Json* j = find(key);
  return j != nullptr && j->kind == Kind::kString ? j->str : def;
}

bool Json::bool_or(std::string_view key, bool def) const {
  const Json* j = find(key);
  return j != nullptr && j->kind == Kind::kBool ? j->boolean : def;
}

}  // namespace d500
