#include "data/sampler.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace d500 {

std::vector<std::int64_t> SequentialSampler::next_batch() {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(batch_));
  for (std::int64_t k = 0; k < batch_; ++k) {
    if (pos_ >= size_) pos_ = 0;
    out.push_back(pos_++);
  }
  return out;
}

ShuffleSampler::ShuffleSampler(std::int64_t dataset_size,
                               std::int64_t batch_size, std::uint64_t seed)
    : Sampler(dataset_size, batch_size), rng_(seed) {
  D500_CHECK(dataset_size > 0 && batch_size > 0);
  perm_.resize(static_cast<std::size_t>(size_));
  for (std::int64_t i = 0; i < size_; ++i)
    perm_[static_cast<std::size_t>(i)] = i;
  reshuffle();
}

void ShuffleSampler::reshuffle() {
  for (std::size_t i = perm_.size(); i > 1; --i)
    std::swap(perm_[i - 1], perm_[rng_.below(i)]);
  pos_ = 0;
}

std::vector<std::int64_t> ShuffleSampler::next_batch() {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(batch_));
  for (std::int64_t k = 0; k < batch_; ++k) {
    if (pos_ >= size_) reshuffle();
    out.push_back(perm_[static_cast<std::size_t>(pos_++)]);
  }
  return out;
}

DistributedSampler::DistributedSampler(std::int64_t dataset_size,
                                       std::int64_t global_batch, int rank,
                                       int world_size, std::uint64_t seed)
    : Sampler(dataset_size, global_batch / world_size),
      rank_(rank),
      world_(world_size),
      rng_(Rng(seed).fork(static_cast<std::uint64_t>(rank) + 1)) {
  D500_CHECK_MSG(world_size > 0 && rank >= 0 && rank < world_size,
                 "DistributedSampler: bad rank/world");
  D500_CHECK_MSG(global_batch % world_size == 0,
                 "DistributedSampler: global batch must divide evenly");
  for (std::int64_t i = rank; i < dataset_size; i += world_size)
    local_.push_back(i);
  D500_CHECK_MSG(!local_.empty(), "DistributedSampler: empty partition");
  reshuffle();
}

void DistributedSampler::reshuffle() {
  for (std::size_t i = local_.size(); i > 1; --i)
    std::swap(local_[i - 1], local_[rng_.below(i)]);
  pos_ = 0;
}

std::vector<std::int64_t> DistributedSampler::next_batch() {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(batch_));
  for (std::int64_t k = 0; k < batch_; ++k) {
    if (pos_ >= static_cast<std::int64_t>(local_.size())) reshuffle();
    out.push_back(local_[static_cast<std::size_t>(pos_++)]);
  }
  return out;
}

void DatasetBiasMetric::observe_label(std::int64_t label) {
  D500_CHECK_MSG(label >= 0 &&
                 label < static_cast<std::int64_t>(histogram_.size()),
                 "DatasetBias: label out of range");
  ++histogram_[static_cast<std::size_t>(label)];
}

double DatasetBiasMetric::bias() const {
  std::int64_t mn = -1, mx = 0;
  for (std::int64_t c : histogram_) {
    mx = std::max(mx, c);
    if (mn < 0 || c < mn) mn = c;
  }
  if (mn <= 0) return mx > 0 ? std::numeric_limits<double>::infinity() : 1.0;
  return static_cast<double>(mx) / static_cast<double>(mn);
}

}  // namespace d500
