// Analytic parallel-file-system cost model for the multi-node rows of the
// dataset-latency experiment (paper Fig. 8 right: ImageNet sharded into
// 1024 files vs. 1 file, read from 1 vs. 64 nodes on Piz Daint's Lustre).
//
// This container has one core and a local disk, so the distributed I/O
// behaviour is modeled, not measured (see DESIGN.md substitutions). The
// model captures the three effects the paper discusses:
//   1. metadata cost — each distinct file touched costs an open/stat
//      round trip ("PFS generally prefer one segmented file rather than
//      querying strings and inodes");
//   2. aggregate bandwidth contention — n nodes share the OST bandwidth;
//   3. shared-file contention — when fewer files than nodes are read
//      concurrently, extent-lock ping-pong penalizes each doubling of
//      readers per file (why 1024 files beat 1 file at 64 nodes by ~10%).
#pragma once

#include <cstdint>

namespace d500 {

struct PFSParams {
  double metadata_open_seconds = 0.8e-3;   // per distinct file opened
  double per_node_bandwidth = 1.5e9;       // B/s client NIC cap
  double total_bandwidth = 40e9;           // B/s aggregate OST bandwidth
  double shared_lock_penalty = 0.035;      // per log2(readers-per-file)
  double base_latency = 2e-4;              // request setup
};

struct PFSLoadEstimate {
  double seconds = 0.0;       // per-node latency for its batch share
  double metadata_seconds = 0.0;
  double transfer_seconds = 0.0;
  double effective_bandwidth = 0.0;  // B/s seen by one node
};

/// Latency for each of `nodes` nodes to read `bytes_per_node` of batch data
/// spread over `total_files` container files, touching `files_touched`
/// distinct files per node for this batch (1 for a segmented file, up to
/// batch size for per-sample files).
PFSLoadEstimate pfs_batch_latency(const PFSParams& p, int nodes,
                                  std::int64_t total_files,
                                  std::int64_t files_touched_per_node,
                                  std::uint64_t bytes_per_node);

}  // namespace d500
