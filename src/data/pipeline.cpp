#include "data/pipeline.hpp"

#include <algorithm>

#include "core/metrics_registry.hpp"
#include "core/threadpool.hpp"
#include "core/trace.hpp"

namespace d500 {

namespace {
Gauge& queue_depth_gauge() {
  static Gauge& g = MetricsRegistry::instance().gauge("data.queue_depth");
  return g;
}
}  // namespace

RecordPipeline::RecordPipeline(std::vector<std::string> shard_paths,
                               DatasetSpec spec, std::int64_t shuffle_buffer,
                               DecoderKind decoder, std::uint64_t seed)
    : spec_(std::move(spec)),
      decoder_(decoder),
      reader_(std::move(shard_paths), shuffle_buffer, seed) {}

Batch RecordPipeline::next_batch(std::int64_t batch) {
  static Histogram& lat =
      MetricsRegistry::instance().histogram("data.batch_ns");
  LatencyScope scope(lat);
  D500_TRACE_SCOPE("data", "batch");
  // Stage 1: sequential reads (through the pseudo-shuffle window). The
  // record vector is a member so its capacity survives across batches.
  std::vector<Record>& records = records_;
  records.clear();
  records.reserve(static_cast<std::size_t>(batch));
  {
    D500_TRACE_SCOPE("data", "shuffle_read");
    for (std::int64_t i = 0; i < batch; ++i) records.push_back(reader_.next());
  }

  // Stage 2: decode the whole batch across the shared thread pool (the
  // structure matches TensorFlow's parallel decode). Each record writes a
  // disjoint output slice, which together cover the batch tensor — so the
  // buffers can skip zero-initialization (short decodes zero their own
  // tail below).
  Batch out;
  out.data = Tensor::uninitialized(
      {batch, spec_.channels, spec_.height, spec_.width});
  out.labels = Tensor::uninitialized({batch});
  const std::int64_t sample_elems =
      spec_.channels * spec_.height * spec_.width;
  D500_TRACE_SCOPE("data", "decode");
  parallel_for(0, batch, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const RawImage img =
          decode_image(records[static_cast<std::size_t>(i)].payload, decoder_);
      float* dst = out.data.data() + i * sample_elems;
      const std::size_t n = std::min(
          img.size(), static_cast<std::size_t>(sample_elems));
      for (std::size_t k = 0; k < n; ++k)
        dst[k] = static_cast<float>(img.pixels[k]) / 255.0f;
      std::fill(dst + n, dst + sample_elems, 0.0f);
    }
  });
  for (std::int64_t i = 0; i < batch; ++i)
    out.labels.at(i) =
        static_cast<float>(records[static_cast<std::size_t>(i)].label);
  return out;
}

PrefetchLoader::PrefetchLoader(BatchProducer producer, int depth)
    : producer_(std::move(producer)),
      depth_(static_cast<std::size_t>(std::max(depth, 1))),
      worker_([this] { worker_loop(); }) {}

PrefetchLoader::~PrefetchLoader() { stop(); }

void PrefetchLoader::worker_loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_produce_.wait(lock,
                       [this] { return stopping_ || queue_.size() < depth_; });
      if (stopping_) return;
    }
    Batch b;
    try {
      D500_TRACE_SCOPE("data", "prefetch");
      b = producer_();
    } catch (...) {
      // Park the exception for the consumer; without this, next() would
      // block forever on a queue no one will ever refill.
      {
        std::lock_guard<std::mutex> lock(mu_);
        error_ = std::current_exception();
      }
      cv_consume_.notify_all();
      return;
    }
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      queue_.push_back(std::move(b));
      depth = queue_.size();
    }
    trace_counter("data", "queue_depth", static_cast<double>(depth));
    queue_depth_gauge().set(static_cast<double>(depth));
    cv_consume_.notify_one();
  }
}

Batch PrefetchLoader::next() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_consume_.wait(lock, [this] { return !queue_.empty() || error_; });
  // Staged batches are still good; hand them out before surfacing the error.
  if (queue_.empty() && error_) std::rethrow_exception(error_);
  Batch b = std::move(queue_.front());
  queue_.pop_front();
  const std::size_t depth = queue_.size();
  lock.unlock();
  trace_counter("data", "queue_depth", static_cast<double>(depth));
  queue_depth_gauge().set(static_cast<double>(depth));
  cv_produce_.notify_one();
  return b;
}

void PrefetchLoader::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      if (worker_.joinable()) worker_.join();
      return;
    }
    stopping_ = true;
  }
  cv_produce_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Batch load_batch(Dataset& ds, std::span<const std::int64_t> indices) {
  Batch out;
  Shape data_shape = ds.sample_shape();
  data_shape.insert(data_shape.begin(),
                    static_cast<std::int64_t>(indices.size()));
  // fill_batch writes every element of both tensors.
  out.data = Tensor::uninitialized(std::move(data_shape));
  out.labels = Tensor::uninitialized({static_cast<std::int64_t>(indices.size())});
  ds.fill_batch(indices, out.data, out.labels);
  return out;
}

}  // namespace d500
