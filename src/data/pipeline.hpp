// Input pipelines (paper §V-D "Dataset Latency" and Table III).
//
// Two pieces:
//  * RecordPipeline — the "native decoder" path of Table III: sequential
//    record reads through the pseudo-shuffle buffer, batch decode spread
//    across the shared thread pool, producing float minibatches.
//  * PrefetchLoader — a background worker thread that stages minibatches
//    into a bounded queue, overlapping ingestion with DNN computation
//    ("the latency of loading a batch can be hidden by pipelining loading
//    with DNN computation", §V-D).
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>

#include "data/dataset.hpp"
#include "data/sampler.hpp"

namespace d500 {

/// A staged minibatch.
struct Batch {
  Tensor data;    // [B, ...]
  Tensor labels;  // [B]
};

/// Record-file ingestion pipeline with batch decoding.
class RecordPipeline {
 public:
  RecordPipeline(std::vector<std::string> shard_paths, DatasetSpec spec,
                 std::int64_t shuffle_buffer, DecoderKind decoder,
                 std::uint64_t seed);

  /// Reads and decodes the next `batch` records into a Batch.
  Batch next_batch(std::int64_t batch);

  std::int64_t size() const { return reader_.size(); }

 private:
  DatasetSpec spec_;
  DecoderKind decoder_;
  RecordFileReader reader_;
  std::vector<Record> records_;  // per-batch staging, capacity recycled
};

/// Function producing the next minibatch (pull model).
using BatchProducer = std::function<Batch()>;

/// Bounded-queue prefetcher: a worker thread runs the producer ahead of the
/// consumer. depth = max staged batches.
class PrefetchLoader {
 public:
  PrefetchLoader(BatchProducer producer, int depth);
  ~PrefetchLoader();

  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  /// Blocks until a staged batch is available. If the producer threw, the
  /// already-staged batches are delivered first and the producer's exception
  /// is rethrown here once the queue drains (and on every later call).
  Batch next();

  void stop();

 private:
  void worker_loop();

  BatchProducer producer_;
  std::size_t depth_;
  std::mutex mu_;
  std::condition_variable cv_produce_;
  std::condition_variable cv_consume_;
  std::deque<Batch> queue_;
  std::exception_ptr error_;  // first producer exception, rethrown by next()
  bool stopping_ = false;
  std::thread worker_;
};

/// Builds a Batch directly from a Dataset + index list (no pipeline), used
/// as the unpipelined baseline in the dataset-latency benchmarks.
Batch load_batch(Dataset& ds, std::span<const std::int64_t> indices);

}  // namespace d500
