#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>

namespace d500 {

void Dataset::fill_batch(std::span<const std::int64_t> indices, Tensor& data,
                         Tensor& labels) {
  const Shape s = sample_shape();
  const std::int64_t sample_elems = shape_elements(s);
  D500_CHECK_MSG(data.dim(0) == static_cast<std::int64_t>(indices.size()) &&
                 data.elements() == sample_elems * data.dim(0),
                 "fill_batch: data tensor shape mismatch");
  D500_CHECK_MSG(labels.elements() ==
                 static_cast<std::int64_t>(indices.size()),
                 "fill_batch: labels tensor shape mismatch");
  Tensor sample(s);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    std::int64_t label = 0;
    get(indices[k], sample, label);
    std::copy(sample.data(), sample.data() + sample_elems,
              data.data() + static_cast<std::int64_t>(k) * sample_elems);
    labels.at(static_cast<std::int64_t>(k)) = static_cast<float>(label);
  }
}

DatasetSpec mnist_like_spec() { return {"mnist-like", 1, 28, 28, 10, 4096}; }
DatasetSpec fashion_mnist_like_spec() {
  return {"fashion-mnist-like", 1, 28, 28, 10, 4096};
}
DatasetSpec cifar10_like_spec() { return {"cifar10-like", 3, 32, 32, 10, 4096}; }
DatasetSpec cifar100_like_spec() {
  return {"cifar100-like", 3, 32, 32, 100, 4096};
}
DatasetSpec imagenet_like_spec() {
  return {"imagenet-like", 3, 64, 64, 1000, 2048};
}

ProceduralImageDataset::ProceduralImageDataset(DatasetSpec spec,
                                               std::uint64_t seed,
                                               float noise_stddev,
                                               std::int64_t index_offset)
    : spec_(std::move(spec)), seed_(seed), noise_(noise_stddev),
      index_offset_(index_offset) {
  // Class templates: smooth blobs so that nearby pixels correlate (gives
  // convolutions something to learn). Deterministic per (seed, class).
  templates_.resize(static_cast<std::size_t>(spec_.classes));
  const std::int64_t chw = spec_.channels * spec_.height * spec_.width;
  Rng master(seed_);
  for (std::int64_t c = 0; c < spec_.classes; ++c) {
    Rng rng = master.fork(static_cast<std::uint64_t>(c) + 1000);
    auto& tpl = templates_[static_cast<std::size_t>(c)];
    tpl.resize(static_cast<std::size_t>(chw));
    // Sum of a few random Gaussian bumps per channel.
    for (std::int64_t ch = 0; ch < spec_.channels; ++ch) {
      float* plane = tpl.data() + ch * spec_.height * spec_.width;
      const int bumps = 3;
      std::vector<float> cx(bumps), cy(bumps), amp(bumps), sig(bumps);
      for (int b = 0; b < bumps; ++b) {
        cx[b] = rng.uniform(0.0f, static_cast<float>(spec_.height));
        cy[b] = rng.uniform(0.0f, static_cast<float>(spec_.width));
        amp[b] = rng.uniform(0.3f, 1.0f);
        sig[b] = rng.uniform(0.1f, 0.3f) * static_cast<float>(spec_.height);
      }
      for (std::int64_t x = 0; x < spec_.height; ++x)
        for (std::int64_t y = 0; y < spec_.width; ++y) {
          float v = 0.0f;
          for (int b = 0; b < bumps; ++b) {
            const float dx = (static_cast<float>(x) - cx[b]) / sig[b];
            const float dy = (static_cast<float>(y) - cy[b]) / sig[b];
            v += amp[b] * std::exp(-0.5f * (dx * dx + dy * dy));
          }
          plane[x * spec_.width + y] = v;
        }
    }
  }
}

void ProceduralImageDataset::get(std::int64_t i, Tensor& out,
                                 std::int64_t& label) {
  D500_CHECK(i >= 0 && i < size());
  label = i % spec_.classes;
  const auto& tpl = templates_[static_cast<std::size_t>(label)];
  Rng rng(seed_ ^ (0x9E3779B97F4A7C15ULL *
                   (static_cast<std::uint64_t>(i + index_offset_) + 1)));
  D500_CHECK(out.elements() == static_cast<std::int64_t>(tpl.size()));
  for (std::size_t k = 0; k < tpl.size(); ++k)
    out.at(static_cast<std::int64_t>(k)) = tpl[k] + rng.normal(0.0f, noise_);
}

RawImage ProceduralImageDataset::raw(std::int64_t i, std::int64_t& label) const {
  RawImage img;
  img.channels = static_cast<int>(spec_.channels);
  img.height = static_cast<int>(spec_.height);
  img.width = static_cast<int>(spec_.width);
  img.pixels.resize(img.size());
  label = i % spec_.classes;
  const auto& tpl = templates_[static_cast<std::size_t>(label)];
  Rng rng(seed_ ^ (0x9E3779B97F4A7C15ULL *
                   (static_cast<std::uint64_t>(i + index_offset_) + 1)));
  for (std::size_t k = 0; k < tpl.size(); ++k) {
    const float v = (tpl[k] + rng.normal(0.0f, noise_)) * 127.0f + 64.0f;
    img.pixels[k] = static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(std::lround(v)), 0, 255));
  }
  return img;
}

SyntheticDataset::SyntheticDataset(DatasetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {}

void SyntheticDataset::get(std::int64_t i, Tensor& out, std::int64_t& label) {
  // Allocate + generate fresh data (the cost Fig. 8 compares against real
  // loading). The allocation is deliberately not reused.
  Tensor fresh(sample_shape());
  fresh.fill_uniform(rng_, 0.0f, 1.0f);
  out = std::move(fresh);
  label = static_cast<std::int64_t>(rng_.below(
      static_cast<std::uint64_t>(spec_.classes)));
}

BinaryFileDataset::BinaryFileDataset(const std::string& path, DatasetSpec spec,
                                     bool preload)
    : spec_(std::move(spec)), preload_(preload) {
  if (preload_) {
    reader_ = std::make_unique<BinaryContainerReader>(path);
    count_ = reader_->size();
    record_bytes_ = reader_->record_bytes();
  } else {
    // Streaming: read the header + labels once, keep the file open and
    // fetch payloads on demand.
    BinaryContainerReader header(path);
    count_ = header.size();
    record_bytes_ = header.record_bytes();
    labels_.resize(static_cast<std::size_t>(count_));
    for (std::int64_t i = 0; i < count_; ++i)
      labels_[static_cast<std::size_t>(i)] = header.label(i);
    stream_.open(path, std::ios::binary);
    if (!stream_) throw Error("BinaryFileDataset: cannot open " + path);
    scratch_.resize(static_cast<std::size_t>(record_bytes_));
  }
  D500_CHECK_MSG(record_bytes_ == spec_.channels * spec_.height * spec_.width,
                 "BinaryFileDataset: record size does not match spec");
}

void BinaryFileDataset::get(std::int64_t i, Tensor& out, std::int64_t& label) {
  if (preload_) {
    const auto payload = reader_->payload(i);
    for (std::size_t k = 0; k < payload.size(); ++k)
      out.at(static_cast<std::int64_t>(k)) =
          static_cast<float>(payload[k]) / 255.0f;
    label = reader_->label(i);
    return;
  }
  D500_CHECK(i >= 0 && i < count_);
  // Header layout: magic(4) + count(8) + record_bytes(8) + payloads.
  const std::streamoff offset = 20 + static_cast<std::streamoff>(i) *
                                         record_bytes_;
  stream_.clear();
  stream_.seekg(offset);
  stream_.read(reinterpret_cast<char*>(scratch_.data()),
               static_cast<std::streamsize>(record_bytes_));
  if (!stream_) throw Error("BinaryFileDataset: read failed");
  for (std::size_t k = 0; k < scratch_.size(); ++k)
    out.at(static_cast<std::int64_t>(k)) =
        static_cast<float>(scratch_[k]) / 255.0f;
  label = labels_[static_cast<std::size_t>(i)];
}

IndexedTarDataset::IndexedTarDataset(const std::string& path, DatasetSpec spec,
                                     DecoderKind decoder)
    : spec_(std::move(spec)), decoder_(decoder), reader_(path) {}

void IndexedTarDataset::get(std::int64_t i, Tensor& out, std::int64_t& label) {
  const Record rec = reader_.read(i);
  const RawImage img = decode_image(rec.payload, decoder_);
  image_to_tensor(img, out);
  label = rec.label;
}

void image_to_tensor(const RawImage& img, Tensor& out) {
  D500_CHECK(out.elements() == static_cast<std::int64_t>(img.size()));
  for (std::size_t k = 0; k < img.size(); ++k)
    out.at(static_cast<std::int64_t>(k)) =
        static_cast<float>(img.pixels[k]) / 255.0f;
}

MaterializedDataset materialize_dataset(const ProceduralImageDataset& ds,
                                        const std::string& dir,
                                        const std::string& name, int shards,
                                        int quality) {
  std::filesystem::create_directories(dir);
  std::vector<Record> raw_records, encoded_records;
  raw_records.reserve(static_cast<std::size_t>(ds.size()));
  encoded_records.reserve(static_cast<std::size_t>(ds.size()));
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    std::int64_t label = 0;
    const RawImage img = ds.raw(i, label);
    Record raw;
    raw.payload = img.pixels;
    raw.label = label;
    raw_records.push_back(std::move(raw));
    Record enc;
    enc.payload = encode_image(img, quality);
    enc.label = label;
    encoded_records.push_back(std::move(enc));
  }
  MaterializedDataset out;
  out.binary_path = dir + "/" + name + ".bin";
  out.record_path = dir + "/" + name + ".rec";
  out.tar_path = dir + "/" + name + ".tar";
  write_binary_container(out.binary_path, raw_records);
  write_record_file(out.record_path, encoded_records);
  out.shard_paths =
      write_sharded_record_files(dir + "/" + name, encoded_records, shards);
  write_indexed_tar(out.tar_path, encoded_records);
  return out;
}

}  // namespace d500
