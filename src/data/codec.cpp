#include "data/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/error.hpp"
#include "core/serialize.hpp"

namespace d500 {

const char* decoder_name(DecoderKind k) {
  switch (k) {
    case DecoderKind::kPilSim: return "pil_sim";
    case DecoderKind::kTurboSim: return "turbo_sim";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kCodecMagic = 0x44354A31;  // "D5J1"
constexpr int kB = 8;  // block size

// Zig-zag scan order for an 8x8 block.
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// Luminance-style base quantization table.
constexpr int kBaseQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

void quant_table(int quality, int out[64]) {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  for (int i = 0; i < 64; ++i) {
    int q = (kBaseQuant[i] * scale + 50) / 100;
    out[i] = std::clamp(q, 1, 255);
  }
}

// Forward DCT-II on one 8x8 block (float, direct formulation — encode speed
// is not benchmarked).
void fdct8x8(const float in[64], float out[64]) {
  constexpr double kPi = 3.14159265358979323846;
  for (int u = 0; u < kB; ++u) {
    for (int v = 0; v < kB; ++v) {
      double acc = 0.0;
      for (int x = 0; x < kB; ++x)
        for (int y = 0; y < kB; ++y)
          acc += in[x * kB + y] *
                 std::cos((2 * x + 1) * u * kPi / (2 * kB)) *
                 std::cos((2 * y + 1) * v * kPi / (2 * kB));
      const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      const double cv = v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      out[u * kB + v] = static_cast<float>(0.25 * cu * cv * acc);
    }
  }
}

// "PIL-like" IDCT: direct quadruple loop with cos() evaluated inline.
void idct8x8_pil(const float in[64], float out[64]) {
  constexpr double kPi = 3.14159265358979323846;
  for (int x = 0; x < kB; ++x) {
    for (int y = 0; y < kB; ++y) {
      double acc = 0.0;
      for (int u = 0; u < kB; ++u)
        for (int v = 0; v < kB; ++v) {
          const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          const double cv = v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          acc += cu * cv * in[u * kB + v] *
                 std::cos((2 * x + 1) * u * kPi / (2 * kB)) *
                 std::cos((2 * y + 1) * v * kPi / (2 * kB));
        }
      out[x * kB + y] = static_cast<float>(0.25 * acc);
    }
  }
}

// "turbo-like" IDCT: precomputed basis + separable row-column passes.
struct IdctTables {
  float basis[kB][kB];  // basis[u][x] = c(u) * cos((2x+1)u*pi/16) * 0.5
  IdctTables() {
    constexpr double kPi = 3.14159265358979323846;
    for (int u = 0; u < kB; ++u) {
      const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < kB; ++x)
        basis[u][x] = static_cast<float>(
            0.5 * cu * std::cos((2 * x + 1) * u * kPi / (2 * kB)));
    }
  }
};

void idct8x8_turbo(const float in[64], float out[64]) {
  static const IdctTables t;
  float tmp[64];
  // Rows: tmp[u][y] = sum_v in[u][v] * basis[v][y]
  for (int u = 0; u < kB; ++u) {
    for (int y = 0; y < kB; ++y) {
      float acc = 0.0f;
      for (int v = 0; v < kB; ++v) acc += in[u * kB + v] * t.basis[v][y];
      tmp[u * kB + y] = acc;
    }
  }
  // Columns: out[x][y] = sum_u tmp[u][y] * basis[u][x]
  for (int x = 0; x < kB; ++x) {
    for (int y = 0; y < kB; ++y) {
      float acc = 0.0f;
      for (int u = 0; u < kB; ++u) acc += tmp[u * kB + y] * t.basis[u][x];
      out[x * kB + y] = acc;
    }
  }
}

}  // namespace

std::vector<std::uint8_t> encode_image(const RawImage& img, int quality) {
  D500_CHECK_MSG(img.pixels.size() == img.size(), "encode: pixel size mismatch");
  int quant[64];
  quant_table(quality, quant);

  BinaryWriter w;
  w.u32(kCodecMagic);
  w.u8(static_cast<std::uint8_t>(img.channels));
  w.varint(static_cast<std::uint64_t>(img.height));
  w.varint(static_cast<std::uint64_t>(img.width));
  w.u8(static_cast<std::uint8_t>(std::clamp(quality, 1, 100)));

  const int bh = (img.height + kB - 1) / kB;
  const int bw = (img.width + kB - 1) / kB;
  float block[64], coef[64];
  for (int c = 0; c < img.channels; ++c) {
    const std::uint8_t* plane =
        img.pixels.data() + static_cast<std::size_t>(c) * img.height * img.width;
    for (int by = 0; by < bh; ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        // Gather (clamped at edges), center around 0.
        for (int x = 0; x < kB; ++x)
          for (int y = 0; y < kB; ++y) {
            const int px = std::min(by * kB + x, img.height - 1);
            const int py = std::min(bx * kB + y, img.width - 1);
            block[x * kB + y] =
                static_cast<float>(plane[px * img.width + py]) - 128.0f;
          }
        fdct8x8(block, coef);
        // Quantize + zig-zag + RLE(zeros) with zig-zag signed values.
        int run = 0;
        for (int i = 0; i < 64; ++i) {
          const int zi = kZigzag[i];
          const int q = static_cast<int>(std::lround(coef[zi] / quant[zi]));
          if (q == 0) {
            ++run;
            continue;
          }
          w.varint(static_cast<std::uint64_t>(run));
          // zig-zag-encode the signed value
          const std::uint64_t zz =
              q >= 0 ? static_cast<std::uint64_t>(q) << 1
                     : (static_cast<std::uint64_t>(-q) << 1) | 1;
          w.varint(zz);
          run = 0;
        }
        w.varint(64);  // end-of-block marker (run can never reach 64 mid-block)
      }
    }
  }
  return w.take();
}

RawImage decode_image(std::span<const std::uint8_t> data, DecoderKind decoder) {
  BinaryReader r(data);
  if (r.u32() != kCodecMagic) throw FormatError("d5j: bad magic");
  RawImage img;
  img.channels = r.u8();
  img.height = static_cast<int>(r.varint());
  img.width = static_cast<int>(r.varint());
  const int quality = r.u8();
  if (img.channels <= 0 || img.height <= 0 || img.width <= 0)
    throw FormatError("d5j: bad dimensions");
  img.pixels.assign(img.size(), 0);

  int quant[64];
  quant_table(quality, quant);

  const int bh = (img.height + kB - 1) / kB;
  const int bw = (img.width + kB - 1) / kB;
  float coef[64], block[64];
  for (int c = 0; c < img.channels; ++c) {
    std::uint8_t* plane =
        img.pixels.data() + static_cast<std::size_t>(c) * img.height * img.width;
    for (int by = 0; by < bh; ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        std::memset(coef, 0, sizeof(coef));
        int pos = 0;
        while (true) {
          const std::uint64_t run = r.varint();
          if (run >= 64) break;  // end of block
          pos += static_cast<int>(run);
          if (pos >= 64) throw FormatError("d5j: coefficient overrun");
          const std::uint64_t zz = r.varint();
          const std::int64_t q =
              (zz & 1) ? -static_cast<std::int64_t>(zz >> 1)
                       : static_cast<std::int64_t>(zz >> 1);
          const int zi = kZigzag[pos];
          coef[zi] = static_cast<float>(q) * static_cast<float>(quant[zi]);
          ++pos;
        }
        switch (decoder) {
          case DecoderKind::kPilSim: idct8x8_pil(coef, block); break;
          case DecoderKind::kTurboSim: idct8x8_turbo(coef, block); break;
        }
        for (int x = 0; x < kB; ++x) {
          const int px = by * kB + x;
          if (px >= img.height) break;
          for (int y = 0; y < kB; ++y) {
            const int py = bx * kB + y;
            if (py >= img.width) break;
            const float v = block[x * kB + y] + 128.0f;
            plane[px * img.width + py] = static_cast<std::uint8_t>(
                std::clamp(static_cast<int>(std::lround(v)), 0, 255));
          }
        }
      }
    }
  }
  return img;
}

int codec_error_bound(int quality) {
  // Empirical: at quality q the worst-case pixel error is bounded by the
  // largest quantization step (DC term dominates).
  int quant[64];
  quant_table(quality, quant);
  int mx = 0;
  for (int i = 0; i < 64; ++i) mx = std::max(mx, quant[i]);
  return mx;
}

}  // namespace d500
