// On-disk dataset containers (paper Fig. 8 / Table III).
//
// Three formats with the access characteristics the paper measures:
//  * Raw binary (IDX-like): fixed-size uint8 records, preloaded to memory —
//    the MNIST/CIFAR row of Fig. 8.
//  * RecordFile (TFRecord-like): length-prefixed records streamed
//    sequentially; random access only via the chunk-based pseudo-shuffle
//    buffer (a window of records is loaded and shuffled in memory, as the
//    paper describes TensorFlow's 10,000-image shuffle buffer).
//  * IndexedTar: a real POSIX ustar archive with one member per record and
//    a sidecar index of offsets — true random access via seek, one
//    pread-style access per record (the paper's IndexedTarDataset).
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace d500 {

/// A dataset record: encoded payload + integer label.
struct Record {
  std::vector<std::uint8_t> payload;
  std::int64_t label = 0;
};

// ---- Raw binary container ---------------------------------------------

/// Writes fixed-size records: header {count, record_bytes}, then packed
/// payloads, then int64 labels.
void write_binary_container(const std::string& path,
                            const std::vector<Record>& records);

/// Loads the whole container into memory (the "already stored in memory"
/// behaviour of small datasets in Fig. 8).
class BinaryContainerReader {
 public:
  explicit BinaryContainerReader(const std::string& path);
  std::int64_t size() const { return count_; }
  std::int64_t record_bytes() const { return record_bytes_; }
  /// Zero-copy view of record i's payload.
  std::span<const std::uint8_t> payload(std::int64_t i) const;
  std::int64_t label(std::int64_t i) const;

 private:
  std::int64_t count_ = 0;
  std::int64_t record_bytes_ = 0;
  std::vector<std::uint8_t> data_;
  std::vector<std::int64_t> labels_;
};

// ---- RecordFile (TFRecord-like) ----------------------------------------

/// Writes records as {varint len, payload, varint label}, optionally
/// sharded into `shards` files "<path>.shard<k>".
void write_record_file(const std::string& path,
                       const std::vector<Record>& records);
std::vector<std::string> write_sharded_record_files(
    const std::string& base_path, const std::vector<Record>& records,
    int shards);

/// Streaming reader with a pseudo-shuffle buffer: fills a window of
/// `buffer_records` from the stream, then serves them in shuffled order,
/// refilling chunk by chunk. With buffer_records == 0, serves sequentially.
class RecordFileReader {
 public:
  RecordFileReader(std::vector<std::string> paths,
                   std::int64_t buffer_records, std::uint64_t seed);

  /// Next record; wraps around at end of all shards (epoch semantics are
  /// the caller's concern).
  Record next();

  /// Total records across shards (scans once at construction).
  std::int64_t size() const { return total_; }

  /// Bytes read from disk so far (I/O accounting for the latency bench).
  std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  bool read_one(Record& out);
  void open_shard(std::size_t idx);
  void refill();

  std::vector<std::string> paths_;
  std::size_t shard_ = 0;
  std::ifstream in_;
  std::int64_t total_ = 0;
  std::int64_t buffer_target_;
  std::vector<Record> buffer_;
  std::size_t buffer_pos_ = 0;
  Rng rng_;
  std::uint64_t bytes_read_ = 0;
};

// ---- IndexedTar ----------------------------------------------------------

/// Writes a POSIX ustar archive with members "rec<i>.d5j" plus a sidecar
/// "<path>.idx" with {offset, size, label} per record.
void write_indexed_tar(const std::string& path,
                       const std::vector<Record>& records);

/// True random access: each read() seeks to the member and reads only its
/// bytes. The archive is NOT preloaded.
class IndexedTarReader {
 public:
  explicit IndexedTarReader(const std::string& path);
  std::int64_t size() const { return static_cast<std::int64_t>(index_.size()); }
  Record read(std::int64_t i);
  std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  struct Entry {
    std::uint64_t offset;
    std::uint64_t size;
    std::int64_t label;
  };
  std::ifstream in_;
  std::vector<Entry> index_;
  std::uint64_t bytes_read_ = 0;
};

/// Verifies that a file is a well-formed ustar archive readable by
/// standard tar (header checksums, member sizes). Used by tests.
bool validate_ustar(const std::string& path, std::int64_t expected_members);

}  // namespace d500
