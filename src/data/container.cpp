#include "data/container.hpp"

#include <algorithm>
#include <cstring>

#include "core/error.hpp"
#include "core/serialize.hpp"

namespace d500 {

// ---- Raw binary container ---------------------------------------------

namespace {
constexpr std::uint32_t kBinMagic = 0x44354231;  // "D5B1"
}

void write_binary_container(const std::string& path,
                            const std::vector<Record>& records) {
  D500_CHECK_MSG(!records.empty(), "binary container: no records");
  const std::size_t rec_bytes = records[0].payload.size();
  for (const auto& r : records)
    D500_CHECK_MSG(r.payload.size() == rec_bytes,
                   "binary container requires fixed-size records");
  BinaryWriter w;
  w.u32(kBinMagic);
  w.u64(records.size());
  w.u64(rec_bytes);
  for (const auto& r : records) w.raw(r.payload.data(), rec_bytes);
  for (const auto& r : records) w.i64(r.label);
  write_file(path, w.buffer());
}

BinaryContainerReader::BinaryContainerReader(const std::string& path) {
  const auto bytes = read_file(path);
  BinaryReader r(bytes);
  if (r.u32() != kBinMagic) throw FormatError("binary container: bad magic");
  count_ = static_cast<std::int64_t>(r.u64());
  record_bytes_ = static_cast<std::int64_t>(r.u64());
  data_.resize(static_cast<std::size_t>(count_ * record_bytes_));
  r.raw(data_.data(), data_.size());
  labels_.resize(static_cast<std::size_t>(count_));
  for (auto& l : labels_) l = r.i64();
}

std::span<const std::uint8_t> BinaryContainerReader::payload(
    std::int64_t i) const {
  D500_CHECK(i >= 0 && i < count_);
  return {data_.data() + static_cast<std::size_t>(i * record_bytes_),
          static_cast<std::size_t>(record_bytes_)};
}

std::int64_t BinaryContainerReader::label(std::int64_t i) const {
  D500_CHECK(i >= 0 && i < count_);
  return labels_[static_cast<std::size_t>(i)];
}

// ---- RecordFile ----------------------------------------------------------

void write_record_file(const std::string& path,
                       const std::vector<Record>& records) {
  BinaryWriter w;
  for (const auto& r : records) {
    w.varint(r.payload.size());
    w.raw(r.payload.data(), r.payload.size());
    w.varint(static_cast<std::uint64_t>(r.label));
  }
  write_file(path, w.buffer());
}

std::vector<std::string> write_sharded_record_files(
    const std::string& base_path, const std::vector<Record>& records,
    int shards) {
  D500_CHECK(shards >= 1);
  std::vector<std::string> paths;
  for (int s = 0; s < shards; ++s) {
    std::vector<Record> part;
    for (std::size_t i = static_cast<std::size_t>(s); i < records.size();
         i += static_cast<std::size_t>(shards))
      part.push_back(records[i]);
    const std::string p = base_path + ".shard" + std::to_string(s);
    if (!part.empty()) {
      write_record_file(p, part);
      paths.push_back(p);
    }
  }
  return paths;
}

RecordFileReader::RecordFileReader(std::vector<std::string> paths,
                                   std::int64_t buffer_records,
                                   std::uint64_t seed)
    : paths_(std::move(paths)), buffer_target_(buffer_records), rng_(seed) {
  D500_CHECK_MSG(!paths_.empty(), "RecordFileReader: no shards");
  // Count total records once.
  for (std::size_t s = 0; s < paths_.size(); ++s) {
    open_shard(s);
    Record r;
    while (read_one(r)) ++total_;
  }
  bytes_read_ = 0;  // counting starts after the size scan
  open_shard(0);
}

void RecordFileReader::open_shard(std::size_t idx) {
  shard_ = idx;
  in_.close();
  in_.clear();
  in_.open(paths_[shard_], std::ios::binary);
  if (!in_) throw Error("RecordFileReader: cannot open " + paths_[shard_]);
}

bool RecordFileReader::read_one(Record& out) {
  // Varint length.
  std::uint64_t len = 0;
  int shift = 0;
  while (true) {
    const int c = in_.get();
    if (c == EOF) return false;
    ++bytes_read_;
    len |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if (!(c & 0x80)) break;
    shift += 7;
    if (shift >= 64) throw FormatError("record file: varint overflow");
  }
  out.payload.resize(len);
  in_.read(reinterpret_cast<char*>(out.payload.data()),
           static_cast<std::streamsize>(len));
  if (!in_) throw FormatError("record file: truncated payload");
  bytes_read_ += len;
  std::uint64_t label = 0;
  shift = 0;
  while (true) {
    const int c = in_.get();
    if (c == EOF) throw FormatError("record file: truncated label");
    ++bytes_read_;
    label |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if (!(c & 0x80)) break;
    shift += 7;
  }
  out.label = static_cast<std::int64_t>(label);
  return true;
}

void RecordFileReader::refill() {
  buffer_.clear();
  buffer_pos_ = 0;
  const std::int64_t want = std::max<std::int64_t>(buffer_target_, 1);
  while (static_cast<std::int64_t>(buffer_.size()) < want) {
    Record r;
    if (read_one(r)) {
      buffer_.push_back(std::move(r));
      continue;
    }
    // Advance to the next shard; wrap at the end (stream semantics).
    const std::size_t next = (shard_ + 1) % paths_.size();
    open_shard(next);
    if (buffer_.empty() && next == 0 && total_ == 0)
      throw Error("RecordFileReader: empty dataset");
    if (!buffer_.empty() && next == 0) break;  // avoid double epoch in one fill
  }
  // Pseudo-shuffle: permute within the in-memory window only (the paper's
  // chunk-based loading, which trades stochasticity for pipelining).
  if (buffer_target_ > 0)
    for (std::size_t i = buffer_.size(); i > 1; --i)
      std::swap(buffer_[i - 1], buffer_[rng_.below(i)]);
}

Record RecordFileReader::next() {
  if (buffer_pos_ >= buffer_.size()) refill();
  return std::move(buffer_[buffer_pos_++]);
}

// ---- IndexedTar ----------------------------------------------------------

namespace {

constexpr std::size_t kTarBlock = 512;

void tar_write_octal(char* field, std::size_t len, std::uint64_t value) {
  // len-1 octal digits, NUL-terminated.
  for (std::size_t i = 0; i + 1 < len; ++i) {
    field[len - 2 - i] = static_cast<char>('0' + (value & 7));
    value >>= 3;
  }
  field[len - 1] = '\0';
}

std::uint64_t tar_read_octal(const char* field, std::size_t len) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < len && field[i]; ++i) {
    if (field[i] == ' ') continue;
    if (field[i] < '0' || field[i] > '7') break;
    v = (v << 3) | static_cast<std::uint64_t>(field[i] - '0');
  }
  return v;
}

struct TarHeader {
  char name[100];
  char mode[8];
  char uid[8];
  char gid[8];
  char size[12];
  char mtime[12];
  char chksum[8];
  char typeflag;
  char linkname[100];
  char magic[6];
  char version[2];
  char uname[32];
  char gname[32];
  char devmajor[8];
  char devminor[8];
  char prefix[155];
  char pad[12];
};
static_assert(sizeof(TarHeader) == kTarBlock, "ustar header must be 512 bytes");

void fill_header(TarHeader& h, const std::string& name, std::uint64_t size) {
  std::memset(&h, 0, sizeof(h));
  D500_CHECK_MSG(name.size() < sizeof(h.name), "tar member name too long");
  std::memcpy(h.name, name.c_str(), name.size());
  tar_write_octal(h.mode, sizeof(h.mode), 0644);
  tar_write_octal(h.uid, sizeof(h.uid), 0);
  tar_write_octal(h.gid, sizeof(h.gid), 0);
  tar_write_octal(h.size, sizeof(h.size), size);
  tar_write_octal(h.mtime, sizeof(h.mtime), 0);
  h.typeflag = '0';
  std::memcpy(h.magic, "ustar", 6);
  h.version[0] = '0';
  h.version[1] = '0';
  std::memcpy(h.uname, "d500", 4);
  std::memcpy(h.gname, "d500", 4);
  // Checksum: sum of all header bytes with the checksum field as spaces.
  std::memset(h.chksum, ' ', sizeof(h.chksum));
  const auto* bytes = reinterpret_cast<const unsigned char*>(&h);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kTarBlock; ++i) sum += bytes[i];
  // Conventional format: 6 octal digits, NUL, space.
  for (int i = 5; i >= 0; --i) {
    h.chksum[i] = static_cast<char>('0' + (sum & 7));
    sum >>= 3;
  }
  h.chksum[6] = '\0';
  h.chksum[7] = ' ';
}

}  // namespace

void write_indexed_tar(const std::string& path,
                       const std::vector<Record>& records) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("write_indexed_tar: cannot open " + path);
  BinaryWriter index;
  index.varint(records.size());
  std::uint64_t offset = 0;
  TarHeader h;
  const char zeros[kTarBlock] = {0};
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    fill_header(h, "rec" + std::to_string(i) + ".d5j", r.payload.size());
    f.write(reinterpret_cast<const char*>(&h), kTarBlock);
    offset += kTarBlock;
    index.varint(offset);               // data offset
    index.varint(r.payload.size());     // data size
    index.varint(static_cast<std::uint64_t>(r.label));
    f.write(reinterpret_cast<const char*>(r.payload.data()),
            static_cast<std::streamsize>(r.payload.size()));
    const std::size_t padding =
        (kTarBlock - r.payload.size() % kTarBlock) % kTarBlock;
    f.write(zeros, static_cast<std::streamsize>(padding));
    offset += r.payload.size() + padding;
  }
  // End-of-archive: two zero blocks.
  f.write(zeros, kTarBlock);
  f.write(zeros, kTarBlock);
  if (!f) throw Error("write_indexed_tar: write failed");
  f.close();
  write_file(path + ".idx", index.buffer());
}

IndexedTarReader::IndexedTarReader(const std::string& path) {
  const auto idx_bytes = read_file(path + ".idx");
  BinaryReader r(idx_bytes);
  const std::uint64_t n = r.varint();
  index_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Entry e;
    e.offset = r.varint();
    e.size = r.varint();
    e.label = static_cast<std::int64_t>(r.varint());
    index_.push_back(e);
  }
  in_.open(path, std::ios::binary);
  if (!in_) throw Error("IndexedTarReader: cannot open " + path);
}

Record IndexedTarReader::read(std::int64_t i) {
  D500_CHECK(i >= 0 && i < size());
  const Entry& e = index_[static_cast<std::size_t>(i)];
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(e.offset));
  Record rec;
  rec.payload.resize(e.size);
  in_.read(reinterpret_cast<char*>(rec.payload.data()),
           static_cast<std::streamsize>(e.size));
  if (!in_) throw FormatError("IndexedTarReader: truncated member");
  bytes_read_ += e.size;
  rec.label = e.label;
  return rec;
}

bool validate_ustar(const std::string& path, std::int64_t expected_members) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  TarHeader h;
  std::int64_t members = 0;
  while (f.read(reinterpret_cast<char*>(&h), kTarBlock)) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(&h);
    bool all_zero = true;
    for (std::size_t i = 0; i < kTarBlock; ++i)
      if (bytes[i] != 0) {
        all_zero = false;
        break;
      }
    if (all_zero) break;  // end-of-archive
    if (std::memcmp(h.magic, "ustar", 5) != 0) return false;
    // Verify checksum.
    TarHeader copy = h;
    std::memset(copy.chksum, ' ', sizeof(copy.chksum));
    const auto* cb = reinterpret_cast<const unsigned char*>(&copy);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kTarBlock; ++i) sum += cb[i];
    if (sum != tar_read_octal(h.chksum, sizeof(h.chksum))) return false;
    const std::uint64_t size = tar_read_octal(h.size, sizeof(h.size));
    const std::uint64_t blocks = (size + kTarBlock - 1) / kTarBlock;
    f.seekg(static_cast<std::streamoff>(blocks * kTarBlock), std::ios::cur);
    ++members;
  }
  return members == expected_members;
}

}  // namespace d500
