// DatasetSampler interfaces (paper §IV-E): minibatch index streams over a
// dataset, including the distributed partitioning sampler of Level 3, plus
// the DatasetBias metric and test_sampler validation (paper §IV-E
// "dataset samplers can be tested individually").
#pragma once

#include <cstdint>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace d500 {

class Sampler {
 public:
  Sampler(std::int64_t dataset_size, std::int64_t batch_size)
      : size_(dataset_size), batch_(batch_size) {}
  virtual ~Sampler() = default;

  std::int64_t dataset_size() const { return size_; }
  std::int64_t batch_size() const { return batch_; }
  std::int64_t batches_per_epoch() const { return size_ / batch_; }

  /// Indices of the next minibatch; advances the stream. Epochs wrap
  /// automatically (reshuffling where applicable).
  virtual std::vector<std::int64_t> next_batch() = 0;

 protected:
  std::int64_t size_;
  std::int64_t batch_;
};

/// In-order batches.
class SequentialSampler : public Sampler {
 public:
  SequentialSampler(std::int64_t dataset_size, std::int64_t batch_size)
      : Sampler(dataset_size, batch_size) {}
  std::vector<std::int64_t> next_batch() override;

 private:
  std::int64_t pos_ = 0;
};

/// Uniform shuffle: a full Fisher-Yates permutation per epoch (true
/// stochasticity, unlike the record pipeline's chunked pseudo-shuffle).
class ShuffleSampler : public Sampler {
 public:
  ShuffleSampler(std::int64_t dataset_size, std::int64_t batch_size,
                 std::uint64_t seed);
  std::vector<std::int64_t> next_batch() override;

 private:
  void reshuffle();
  Rng rng_;
  std::vector<std::int64_t> perm_;
  std::int64_t pos_ = 0;
};

/// Distributed partitioning (paper: ShuffleDistributedSampler): rank r of n
/// sees the elements congruent to r mod n, shuffled locally with a
/// rank-decorrelated stream. All ranks reshuffle at the same epoch
/// boundaries, keeping the distributed-dataset semantics consistent.
class DistributedSampler : public Sampler {
 public:
  DistributedSampler(std::int64_t dataset_size, std::int64_t global_batch,
                     int rank, int world_size, std::uint64_t seed);

  /// Per-rank share of the global batch.
  std::vector<std::int64_t> next_batch() override;

  int rank() const { return rank_; }
  int world_size() const { return world_; }

 private:
  void reshuffle();
  int rank_;
  int world_;
  Rng rng_;
  std::vector<std::int64_t> local_;  // this rank's partition
  std::int64_t pos_ = 0;
};

/// DatasetBias metric (paper §IV-E): label histogram over sampled batches.
/// bias() is max/min class frequency (1.0 = perfectly balanced); the
/// histogram itself supports finer analysis.
class DatasetBiasMetric {
 public:
  explicit DatasetBiasMetric(std::int64_t classes)
      : histogram_(static_cast<std::size_t>(classes), 0) {}

  void observe_label(std::int64_t label);
  double bias() const;
  const std::vector<std::int64_t>& histogram() const { return histogram_; }

 private:
  std::vector<std::int64_t> histogram_;
};

struct SamplerTestResult {
  bool passed = false;
  double bias = 0.0;
  std::int64_t duplicate_indices = 0;  // within one epoch
  std::int64_t out_of_range = 0;
};

/// Runs the sampler for `epochs` epochs against a label function and checks
/// (a) every index is in range, (b) each epoch is a permutation fragment
/// (no duplicates within an epoch), (c) label bias stays under `max_bias`.
template <typename LabelFn>
SamplerTestResult test_sampler(Sampler& sampler, std::int64_t classes,
                               LabelFn&& label_of, int epochs = 1,
                               double max_bias = 2.0) {
  SamplerTestResult res;
  DatasetBiasMetric bias(classes);
  for (int e = 0; e < epochs; ++e) {
    std::vector<bool> seen(static_cast<std::size_t>(sampler.dataset_size()),
                           false);
    for (std::int64_t b = 0; b < sampler.batches_per_epoch(); ++b) {
      for (std::int64_t idx : sampler.next_batch()) {
        if (idx < 0 || idx >= sampler.dataset_size()) {
          ++res.out_of_range;
          continue;
        }
        if (seen[static_cast<std::size_t>(idx)]) ++res.duplicate_indices;
        seen[static_cast<std::size_t>(idx)] = true;
        bias.observe_label(label_of(idx));
      }
    }
  }
  res.bias = bias.bias();
  res.passed = res.out_of_range == 0 && res.duplicate_indices == 0 &&
               res.bias <= max_bias;
  return res;
}

}  // namespace d500
