// Dataset interfaces and implementations (paper §IV-B "Interoperability:
// Datasets" and §IV-E DatasetSampler inputs).
//
// All image content is procedural (see DESIGN.md substitutions): each class
// has a deterministic template image, samples are noisy instances — a real
// learning task with MNIST/CIFAR/ImageNet-like shapes. The same generator
// feeds the in-memory datasets used for training (Figs. 9-11) and the
// on-disk containers used for ingestion benchmarks (Fig. 8 / Table III).
#pragma once

#include <memory>
#include <string>

#include "core/rng.hpp"
#include "data/codec.hpp"
#include "data/container.hpp"
#include "tensor/tensor.hpp"

namespace d500 {

/// Supervised dataset: float32 sample tensors + integer labels.
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual std::int64_t size() const = 0;
  virtual Shape sample_shape() const = 0;  // without the batch dimension
  virtual std::int64_t classes() const = 0;
  /// Writes sample i into `out` (shaped sample_shape()) and its label.
  virtual void get(std::int64_t i, Tensor& out, std::int64_t& label) = 0;

  /// Fills a minibatch: data [B, ...sample_shape], labels [B].
  void fill_batch(std::span<const std::int64_t> indices, Tensor& data,
                  Tensor& labels);
};

/// Named dataset shapes mirroring the paper's benchmark datasets (channel/
/// spatial dims preserved; sample counts scaled for a single-core box).
struct DatasetSpec {
  std::string name;
  std::int64_t channels, height, width, classes, train_size;
};

DatasetSpec mnist_like_spec();
DatasetSpec fashion_mnist_like_spec();
DatasetSpec cifar10_like_spec();
DatasetSpec cifar100_like_spec();
DatasetSpec imagenet_like_spec();  // 3x64x64, 1000 classes (downscaled)

/// Procedural in-memory dataset: per-class template + Gaussian noise.
/// Deterministic in (spec, seed). Train/test splits share the seed (same
/// class templates = same distribution) and use disjoint `index_offset`
/// ranges so their samples differ.
class ProceduralImageDataset : public Dataset {
 public:
  ProceduralImageDataset(DatasetSpec spec, std::uint64_t seed,
                         float noise_stddev = 0.25f,
                         std::int64_t index_offset = 0);

  std::int64_t size() const override { return spec_.train_size; }
  Shape sample_shape() const override {
    return {spec_.channels, spec_.height, spec_.width};
  }
  std::int64_t classes() const override { return spec_.classes; }
  void get(std::int64_t i, Tensor& out, std::int64_t& label) override;

  /// The uint8 image and label of sample i (for container materialization).
  RawImage raw(std::int64_t i, std::int64_t& label) const;

  const DatasetSpec& spec() const { return spec_; }

 private:
  DatasetSpec spec_;
  std::uint64_t seed_;
  float noise_;
  std::int64_t index_offset_;
  std::vector<std::vector<float>> templates_;  // per class, CHW
};

/// Synthetic on-demand dataset (Fig. 8 "Synth"): every get() allocates and
/// generates fresh random data — measuring generator cost, not I/O.
class SyntheticDataset : public Dataset {
 public:
  SyntheticDataset(DatasetSpec spec, std::uint64_t seed);
  std::int64_t size() const override { return spec_.train_size; }
  Shape sample_shape() const override {
    return {spec_.channels, spec_.height, spec_.width};
  }
  std::int64_t classes() const override { return spec_.classes; }
  void get(std::int64_t i, Tensor& out, std::int64_t& label) override;

 private:
  DatasetSpec spec_;
  Rng rng_;
};

/// Dataset over a raw binary container. With preload=true (small datasets
/// of Fig. 8: MNIST class) the whole container lives in memory and get()
/// is a uint8->float conversion; with preload=false (CIFAR class: too big
/// to keep resident in the paper's setting) every get() seeks and reads
/// its record from the file.
class BinaryFileDataset : public Dataset {
 public:
  BinaryFileDataset(const std::string& path, DatasetSpec spec,
                    bool preload = true);
  std::int64_t size() const override { return count_; }
  Shape sample_shape() const override {
    return {spec_.channels, spec_.height, spec_.width};
  }
  std::int64_t classes() const override { return spec_.classes; }
  void get(std::int64_t i, Tensor& out, std::int64_t& label) override;

 private:
  DatasetSpec spec_;
  bool preload_;
  std::int64_t count_ = 0;
  std::int64_t record_bytes_ = 0;
  std::unique_ptr<BinaryContainerReader> reader_;  // preload mode
  // streaming mode
  std::ifstream stream_;
  std::vector<std::int64_t> labels_;
  std::vector<std::uint8_t> scratch_;
};

/// Dataset over an IndexedTar of codec-encoded images: every get() seeks,
/// reads, and decodes (Table III's tar rows). Decoder selectable.
class IndexedTarDataset : public Dataset {
 public:
  IndexedTarDataset(const std::string& path, DatasetSpec spec,
                    DecoderKind decoder);
  std::int64_t size() const override { return reader_.size(); }
  Shape sample_shape() const override {
    return {spec_.channels, spec_.height, spec_.width};
  }
  std::int64_t classes() const override { return spec_.classes; }
  void get(std::int64_t i, Tensor& out, std::int64_t& label) override;
  std::uint64_t bytes_read() const { return reader_.bytes_read(); }

 private:
  DatasetSpec spec_;
  DecoderKind decoder_;
  IndexedTarReader reader_;
};

/// Materializes a procedural dataset into the given containers on disk.
/// Returns the record list (encoded with the codec for record/tar forms).
struct MaterializedDataset {
  std::string binary_path;              // raw uint8 container
  std::string record_path;              // single record file
  std::vector<std::string> shard_paths; // sharded record files
  std::string tar_path;                 // indexed tar
};

MaterializedDataset materialize_dataset(const ProceduralImageDataset& ds,
                                        const std::string& dir,
                                        const std::string& name, int shards,
                                        int quality = 75);

/// uint8 CHW image -> float tensor in [0,1).
void image_to_tensor(const RawImage& img, Tensor& out);

}  // namespace d500
