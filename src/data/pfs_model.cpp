#include "data/pfs_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace d500 {

PFSLoadEstimate pfs_batch_latency(const PFSParams& p, int nodes,
                                  std::int64_t total_files,
                                  std::int64_t files_touched_per_node,
                                  std::uint64_t bytes_per_node) {
  D500_CHECK(nodes >= 1 && total_files >= 1 && files_touched_per_node >= 1);
  PFSLoadEstimate est;

  // Metadata: opens are amortized per epoch in steady state, but each batch
  // still touches `files_touched_per_node` distinct extents/inodes; charge
  // the open cost scaled down by client-side caching past the first touch.
  const double cache_factor = 0.15;  // steady-state open cost fraction
  est.metadata_seconds = p.metadata_open_seconds * cache_factor *
                         static_cast<double>(files_touched_per_node);

  // Bandwidth: a node gets min(NIC cap, fair share of OST aggregate).
  double bw = std::min(p.per_node_bandwidth,
                       p.total_bandwidth / static_cast<double>(nodes));

  // Shared-file extent-lock contention: readers per file > 1 degrades
  // throughput logarithmically.
  const double readers_per_file =
      static_cast<double>(nodes) / static_cast<double>(total_files);
  if (readers_per_file > 1.0)
    bw /= 1.0 + p.shared_lock_penalty * std::log2(readers_per_file) *
                    std::log2(readers_per_file + 1.0);

  est.effective_bandwidth = bw;
  est.transfer_seconds = static_cast<double>(bytes_per_node) / bw;
  est.seconds = p.base_latency + est.metadata_seconds + est.transfer_seconds;
  return est;
}

}  // namespace d500
