// Toy lossy image codec ("d5j") standing in for JPEG in the dataset
// ingestion experiments (paper Fig. 8 / Table III).
//
// Real pipeline stages with real, asymmetric cost: 8x8 block DCT-II,
// quality-scaled quantization, zig-zag reordering, zero-run-length +
// varint entropy coding. Two decoder implementations with genuinely
// different speed play the roles of the paper's decoders:
//   * DecoderKind::kPilSim   — direct O(64^2) per-block IDCT with cos()
//                              evaluated inline (PIL-like, slow)
//   * DecoderKind::kTurboSim — precomputed separable basis, row-column
//                              IDCT (libjpeg-turbo-like, fast)
// Both compute the same transform (pixels agree to within 1 quantization
// of rounding), so correctness tests can cross-validate them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace d500 {

/// Raw image: uint8 pixels, channel-major ([C][H][W]).
struct RawImage {
  int channels = 0;
  int height = 0;
  int width = 0;
  std::vector<std::uint8_t> pixels;

  std::size_t size() const {
    return static_cast<std::size_t>(channels) * height * width;
  }
};

/// Encodes with the given quality in [1, 100]; higher = larger/closer.
std::vector<std::uint8_t> encode_image(const RawImage& img, int quality = 75);

enum class DecoderKind { kPilSim, kTurboSim };

const char* decoder_name(DecoderKind k);

/// Decodes a d5j payload. Throws FormatError on malformed input.
RawImage decode_image(std::span<const std::uint8_t> data, DecoderKind decoder);

/// Maximum absolute pixel error the codec may introduce at the given
/// quality (used by tests to bound lossiness).
int codec_error_bound(int quality);

}  // namespace d500
