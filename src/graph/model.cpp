#include "graph/model.hpp"

#include <algorithm>
#include <sstream>

#include "core/serialize.hpp"

namespace d500 {

const ModelNode* Model::producer(const std::string& value) const {
  for (const auto& n : nodes)
    for (const auto& out : n.outputs)
      if (out == value) return &n;
  return nullptr;
}

std::vector<const ModelNode*> Model::consumers(const std::string& value) const {
  std::vector<const ModelNode*> out;
  for (const auto& n : nodes)
    for (const auto& in : n.inputs)
      if (in == value) {
        out.push_back(&n);
        break;
      }
  return out;
}

void Model::validate() const {
  std::set<std::string> produced;
  for (const auto& name : graph_inputs) {
    if (!produced.insert(name).second)
      throw FormatError("model: duplicate input '" + name + "'");
    if (!input_shapes.count(name))
      throw FormatError("model: input '" + name + "' has no shape");
  }
  for (const auto& [name, _] : initializers) {
    if (!produced.insert(name).second)
      throw FormatError("model: initializer '" + name +
                        "' collides with another value");
  }
  for (const auto& t : trainable)
    if (!initializers.count(t))
      throw FormatError("model: trainable '" + t + "' is not an initializer");

  std::set<std::string> node_names;
  // Nodes must be stored in a valid topological order (producers before
  // consumers) — this both checks acyclicity and matches the on-disk
  // contract.
  for (const auto& n : nodes) {
    if (n.name.empty() || !node_names.insert(n.name).second)
      throw FormatError("model: missing or duplicate node name '" + n.name +
                        "'");
    for (const auto& in : n.inputs)
      if (!produced.count(in))
        throw FormatError("model: node '" + n.name + "' input '" + in +
                          "' is not produced before it");
    for (const auto& out : n.outputs)
      if (!produced.insert(out).second)
        throw FormatError("model: value '" + out + "' produced twice");
  }
  for (const auto& out : graph_outputs)
    if (!produced.count(out))
      throw FormatError("model: graph output '" + out + "' never produced");
}

std::int64_t Model::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& name : trainable) {
    auto it = initializers.find(name);
    if (it != initializers.end()) n += it->second.elements();
  }
  return n;
}

namespace {

constexpr std::uint32_t kModelMagic = 0x44354D31;  // "D5M1"

void write_attrs(BinaryWriter& w, const Attrs& attrs) {
  w.varint(attrs.values().size());
  for (const auto& [key, value] : attrs.values()) {
    w.str(key);
    w.u8(static_cast<std::uint8_t>(value.index()));
    switch (value.index()) {
      case 0: w.i64(std::get<std::int64_t>(value)); break;
      case 1: w.f64(std::get<double>(value)); break;
      case 2: w.str(std::get<std::string>(value)); break;
      case 3: {
        const auto& v = std::get<std::vector<std::int64_t>>(value);
        w.varint(v.size());
        for (auto x : v) w.i64(x);
        break;
      }
    }
  }
}

Attrs read_attrs(BinaryReader& r) {
  Attrs attrs;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string key = r.str();
    const std::uint8_t kind = r.u8();
    switch (kind) {
      case 0: attrs.set(key, r.i64()); break;
      case 1: attrs.set(key, r.f64()); break;
      case 2: attrs.set(key, r.str()); break;
      case 3: {
        std::vector<std::int64_t> v(r.varint());
        for (auto& x : v) x = r.i64();
        attrs.set(key, std::move(v));
        break;
      }
      default:
        throw FormatError("model: unknown attribute kind " +
                          std::to_string(kind));
    }
  }
  return attrs;
}

void write_tensor(BinaryWriter& w, const Tensor& t) {
  w.varint(t.shape().size());
  for (auto d : t.shape()) w.i64(d);
  w.u8(static_cast<std::uint8_t>(t.layout()));
  w.raw(t.data(), t.bytes());
}

Tensor read_tensor(BinaryReader& r) {
  Shape shape(r.varint());
  for (auto& d : shape) d = r.i64();
  const auto layout = static_cast<Layout>(r.u8());
  Tensor t(shape, layout);
  r.raw(t.data(), t.bytes());
  return t;
}

}  // namespace

std::vector<std::uint8_t> serialize_model(const Model& model) {
  BinaryWriter w;
  w.u32(kModelMagic);
  w.str(model.name);

  w.varint(model.graph_inputs.size());
  for (const auto& in : model.graph_inputs) {
    w.str(in);
    const Shape& s = model.input_shapes.at(in);
    w.varint(s.size());
    for (auto d : s) w.i64(d);
  }

  w.varint(model.initializers.size());
  for (const auto& [name, tensor] : model.initializers) {
    w.str(name);
    w.u8(model.trainable.count(name) ? 1 : 0);
    write_tensor(w, tensor);
  }

  w.varint(model.nodes.size());
  for (const auto& n : model.nodes) {
    w.str(n.name);
    w.str(n.op_type);
    w.varint(n.inputs.size());
    for (const auto& in : n.inputs) w.str(in);
    w.varint(n.outputs.size());
    for (const auto& out : n.outputs) w.str(out);
    write_attrs(w, n.attrs);
  }

  w.varint(model.graph_outputs.size());
  for (const auto& out : model.graph_outputs) w.str(out);
  return w.take();
}

Model deserialize_model(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  if (r.u32() != kModelMagic)
    throw FormatError("model: bad magic (not a d5m file)");
  Model m;
  m.name = r.str();

  const std::uint64_t nin = r.varint();
  for (std::uint64_t i = 0; i < nin; ++i) {
    const std::string name = r.str();
    Shape s(r.varint());
    for (auto& d : s) d = r.i64();
    m.graph_inputs.push_back(name);
    m.input_shapes[name] = std::move(s);
  }

  const std::uint64_t ninit = r.varint();
  for (std::uint64_t i = 0; i < ninit; ++i) {
    const std::string name = r.str();
    const bool trainable = r.u8() != 0;
    m.initializers.emplace(name, read_tensor(r));
    if (trainable) m.trainable.insert(name);
  }

  const std::uint64_t nnodes = r.varint();
  for (std::uint64_t i = 0; i < nnodes; ++i) {
    ModelNode n;
    n.name = r.str();
    n.op_type = r.str();
    n.inputs.resize(r.varint());
    for (auto& in : n.inputs) in = r.str();
    n.outputs.resize(r.varint());
    for (auto& out : n.outputs) out = r.str();
    n.attrs = read_attrs(r);
    m.nodes.push_back(std::move(n));
  }

  const std::uint64_t nout = r.varint();
  for (std::uint64_t i = 0; i < nout; ++i) m.graph_outputs.push_back(r.str());

  m.validate();
  return m;
}

void save_model(const Model& model, const std::string& path) {
  const auto bytes = serialize_model(model);
  write_file(path, bytes);
}

Model load_model(const std::string& path) {
  const auto bytes = read_file(path);
  return deserialize_model(bytes);
}

std::string model_to_text(const Model& model) {
  std::ostringstream os;
  os << "Model \"" << model.name << "\"\n";
  os << "  inputs:";
  for (const auto& in : model.graph_inputs)
    os << " " << in << shape_to_string(model.input_shapes.at(in));
  os << "\n  initializers: " << model.initializers.size() << " ("
     << model.parameter_count() << " trainable elements)\n";
  for (const auto& n : model.nodes) {
    os << "  " << n.name << " = " << n.op_type << "(";
    for (std::size_t i = 0; i < n.inputs.size(); ++i)
      os << (i ? ", " : "") << n.inputs[i];
    os << ") -> ";
    for (std::size_t i = 0; i < n.outputs.size(); ++i)
      os << (i ? ", " : "") << n.outputs[i];
    os << "\n";
  }
  os << "  outputs:";
  for (const auto& out : model.graph_outputs) os << " " << out;
  os << "\n";
  return os.str();
}

ModelBuilder& ModelBuilder::input(const std::string& name, Shape shape) {
  model_.graph_inputs.push_back(name);
  model_.input_shapes[name] = std::move(shape);
  return *this;
}

ModelBuilder& ModelBuilder::initializer(const std::string& name, Tensor value,
                                        bool trainable) {
  model_.initializers.emplace(name, std::move(value));
  if (trainable) model_.trainable.insert(name);
  return *this;
}

ModelBuilder& ModelBuilder::node(const std::string& op_type,
                                 std::vector<std::string> inputs,
                                 std::vector<std::string> outputs, Attrs attrs,
                                 const std::string& node_name) {
  ModelNode n;
  n.name = node_name.empty()
               ? op_type + "_" + std::to_string(model_.nodes.size())
               : node_name;
  n.op_type = op_type;
  n.inputs = std::move(inputs);
  n.outputs = std::move(outputs);
  n.attrs = std::move(attrs);
  model_.nodes.push_back(std::move(n));
  return *this;
}

ModelBuilder& ModelBuilder::output(const std::string& name) {
  model_.graph_outputs.push_back(name);
  return *this;
}

Model ModelBuilder::build() {
  model_.validate();
  return std::move(model_);
}

}  // namespace d500
