// Inter-op parallel graph executor built on the shared thread pool.
//
// The network is compiled into a dependency-count table (one count per
// node, one unblock edge per value consumed) and ready nodes are scheduled
// onto the pool via run_task_graph — independent branches of the graph run
// concurrently, on the same workers the kernels use for intra-op
// parallelism (nested parallel_for calls compose; the pool never
// oversubscribes).
//
// Determinism: scheduling order varies with the thread count, but every
// value is produced exactly once, consumers only run after their producers,
// and backward gradient contributions are combined in the fixed order the
// ReferenceExecutor uses (descending consumer topo index, ascending input
// slot). Outputs and gradients are therefore bit-identical to the
// ReferenceExecutor at any D500_THREADS setting.
#pragma once

#include "graph/executor.hpp"

namespace d500 {

class ParallelExecutor : public GraphExecutor {
 public:
  explicit ParallelExecutor(Network net) : GraphExecutor(std::move(net)) {}

  std::string name() const override { return "parallel"; }

  TensorMap inference(const TensorMap& feeds) override;
  TensorMap inference_and_backprop(const TensorMap& feeds,
                                   const std::string& loss_value = "") override;

 private:
  /// Runs the forward pass over the pool; fills `values` with all computed
  /// activations. Shared bookkeeping (values map, live-byte accounting,
  /// event hooks) is serialized under one mutex; operator kernels run
  /// outside it.
  void forward_pass(const TensorMap& feeds, TensorMap& values);

  /// Activation cache reused across runs (same contract as the
  /// ReferenceExecutor cache: in-place rewrite on shape match, eviction of
  /// names the graph no longer produces). The run_task_graph join gives
  /// the next run a happens-before edge over every cached write.
  TensorMap values_;
};

}  // namespace d500
