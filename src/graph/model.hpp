// The serializable DNN model format (paper §II-D and Fig. 4).
//
// Deep500 stores DNNs in ONNX; this reproduction defines an ONNX-shaped
// format ("d5m") with the same structure — a named DAG of nodes carrying
// op_type / named inputs / named outputs / attributes, plus initializer
// tensors — serialized through core/serialize.hpp instead of protobuf.
// Like the paper's extension of ONNX, the op set includes loss and
// optimizer-support operators that stock ONNX lacks.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ops/registry.hpp"
#include "tensor/tensor.hpp"

namespace d500 {

/// One node of the model DAG. Edges are named values: a node input names
/// either another node's output, an initializer, or a graph input.
struct ModelNode {
  std::string name;
  std::string op_type;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  Attrs attrs;
};

/// A stored DNN.
struct Model {
  std::string name;

  std::vector<ModelNode> nodes;

  /// Tensors stored with the model: trainable parameters and constants.
  std::map<std::string, Tensor> initializers;
  /// Which initializers are trainable (gradients are produced for these).
  std::set<std::string> trainable;

  /// Runtime-fed values (e.g. "data", "labels") with their shapes.
  std::vector<std::string> graph_inputs;
  std::map<std::string, Shape> input_shapes;

  /// Values exposed as results (e.g. "logits", "loss").
  std::vector<std::string> graph_outputs;

  /// Returns the node producing `value`, or nullptr for inputs/initializers.
  const ModelNode* producer(const std::string& value) const;

  /// Consumers of `value` in graph order.
  std::vector<const ModelNode*> consumers(const std::string& value) const;

  /// Structural validation: unique node/edge names, all inputs resolvable,
  /// no cycles. Throws FormatError on violation.
  void validate() const;

  /// Total parameter elements over trainable initializers.
  std::int64_t parameter_count() const;
};

/// Binary serialization (magic "D5M1").
std::vector<std::uint8_t> serialize_model(const Model& model);
Model deserialize_model(std::span<const std::uint8_t> data);
void save_model(const Model& model, const std::string& path);
Model load_model(const std::string& path);

/// Human-readable dump of the graph structure (no initializer data).
std::string model_to_text(const Model& model);

/// Convenience builder used by src/models and tests.
class ModelBuilder {
 public:
  explicit ModelBuilder(std::string name) { model_.name = std::move(name); }

  ModelBuilder& input(const std::string& name, Shape shape);
  ModelBuilder& initializer(const std::string& name, Tensor value,
                            bool trainable = true);
  /// Appends a node; node name defaults to "<op_type>_<index>".
  ModelBuilder& node(const std::string& op_type,
                     std::vector<std::string> inputs,
                     std::vector<std::string> outputs, Attrs attrs = {},
                     const std::string& node_name = "");
  ModelBuilder& output(const std::string& name);

  Model build();

 private:
  Model model_;
};

}  // namespace d500
