// GraphExecutor interface (paper §IV-D): controls DNN execution with two
// entry points — inference, and inference_and_backprop — and fires Event
// hooks at operator and pass boundaries so metrics can attach without
// touching executor internals.
#pragma once

#include <memory>
#include <mutex>

#include "core/event.hpp"
#include "graph/network.hpp"

namespace d500 {

class GraphExecutor {
 public:
  explicit GraphExecutor(Network net) : net_(std::move(net)) {}
  virtual ~GraphExecutor() = default;

  GraphExecutor(const GraphExecutor&) = delete;
  GraphExecutor& operator=(const GraphExecutor&) = delete;

  virtual std::string name() const = 0;

  Network& network() { return net_; }
  const Network& network() const { return net_; }

  /// Runs the graph on `feeds` and returns the declared graph outputs.
  virtual TensorMap inference(const TensorMap& feeds) = 0;

  /// Runs forward then backward from `loss_value` (a graph value holding a
  /// scalar; empty = the last declared output). Parameter gradients are
  /// stored into the network under Network::gradient_name(param).
  /// Returns the graph outputs of the forward pass.
  virtual TensorMap inference_and_backprop(const TensorMap& feeds,
                                           const std::string& loss_value = "") = 0;

  /// Event hooks (paper: user-specified hooks invoked during complex
  /// actions). Returning false from an after-hook requests early exit of
  /// the enclosing loop; executors only propagate the flag.
  void add_event(std::shared_ptr<Event> ev) { events_.push_back(std::move(ev)); }
  const std::vector<std::shared_ptr<Event>>& events() const { return events_; }
  /// Lets hot paths skip building the EventInfo (which copies a label
  /// string) when no hooks are registered.
  bool has_events() const { return !events_.empty(); }

  /// Optional simulated device-memory budget in bytes for activations and
  /// operator workspace; 0 = unlimited. Executors throw OutOfMemoryError
  /// when a forward pass would exceed it (used by the micro-batching
  /// experiment, paper §V-C).
  void set_memory_limit(std::size_t bytes) { memory_limit_ = bytes; }
  std::size_t memory_limit() const { return memory_limit_; }

  /// Peak activation+workspace bytes observed in the last forward pass.
  std::size_t last_peak_memory() const { return last_peak_memory_; }

 protected:
  /// Serialized event dispatch (see the threading contract in
  /// core/event.hpp): parallel executors fire from pool workers, so the
  /// lock keeps at most one hook invocation in flight per executor. The
  /// no-events fast path skips the lock entirely.
  bool fire(const EventInfo& info) {
    if (events_.empty()) return true;
    std::lock_guard<std::mutex> lock(events_mu_);
    bool keep_going = true;
    for (auto& ev : events_) keep_going = ev->on_event(info) && keep_going;
    return keep_going;
  }

  Network net_;
  std::vector<std::shared_ptr<Event>> events_;
  std::mutex events_mu_;
  std::size_t memory_limit_ = 0;
  std::size_t last_peak_memory_ = 0;
};

/// Reference executor: topological interpretation of the graph, exact but
/// unoptimized (paper: "reference implementations ... verified yet slow").
/// Optionally records per-operator wall time, which the FrameworkOverhead
/// metric compares against whole-graph time.
class ReferenceExecutor : public GraphExecutor {
 public:
  explicit ReferenceExecutor(Network net) : GraphExecutor(std::move(net)) {}

  std::string name() const override { return "reference"; }

  TensorMap inference(const TensorMap& feeds) override;
  TensorMap inference_and_backprop(const TensorMap& feeds,
                                   const std::string& loss_value = "") override;

  void set_collect_op_times(bool on) { collect_op_times_ = on; }
  /// node name -> per-call forward seconds (appended across runs).
  const std::map<std::string, std::vector<double>>& op_times() const {
    return op_times_;
  }
  void clear_op_times() { op_times_.clear(); }

 private:
  /// Shared forward pass; fills `values` with all computed activations.
  void forward_pass(const TensorMap& feeds, TensorMap& values);

  /// Activation cache reused across runs: forward_pass rewrites
  /// same-shaped entries in place instead of reallocating (operators fully
  /// overwrite their outputs), evicting names the graph no longer produces.
  TensorMap values_;

  bool collect_op_times_ = false;
  std::map<std::string, std::vector<double>> op_times_;
};

/// FrameworkOverhead metric (paper §IV-D): ratio of whole-graph time to the
/// sum of individual operator times, estimating management overhead
/// (scheduling, bookkeeping, kernel invocation).
struct FrameworkOverheadResult {
  double whole_graph_seconds = 0.0;   // median
  double sum_of_ops_seconds = 0.0;    // median per-op sums
  double overhead_fraction = 0.0;     // (whole - sum) / whole
};

FrameworkOverheadResult measure_framework_overhead(ReferenceExecutor& exec,
                                                   const TensorMap& feeds,
                                                   int reruns = 10);

}  // namespace d500
