#include "graph/transforms.hpp"

#include <algorithm>
#include <set>

namespace d500 {

Model FuseBiasReluTransform::apply(const Model& model) const {
  Model out = model;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < out.nodes.size() && !changed; ++i) {
      const ModelNode& bias = out.nodes[i];
      if (bias.op_type != "BiasAdd") continue;
      const std::string& mid = bias.outputs[0];
      // The intermediate value must feed exactly one ReLU and nothing else,
      // and must not be a graph output.
      if (std::find(out.graph_outputs.begin(), out.graph_outputs.end(), mid) !=
          out.graph_outputs.end())
        continue;
      auto consumers = out.consumers(mid);
      if (consumers.size() != 1 || consumers[0]->op_type != "ReLU") continue;
      const ModelNode* relu = consumers[0];

      ModelNode fused;
      fused.name = bias.name + "+" + relu->name;
      fused.op_type = "FusedBiasRelu";
      fused.inputs = bias.inputs;
      fused.outputs = relu->outputs;

      // Replace the BiasAdd node in place, then erase the ReLU node.
      const std::string relu_name = relu->name;
      out.nodes[i] = std::move(fused);
      out.nodes.erase(
          std::find_if(out.nodes.begin(), out.nodes.end(),
                       [&](const ModelNode& n) { return n.name == relu_name; }));
      changed = true;
    }
  }
  out.validate();
  return out;
}

Model DeadNodeElimination::apply(const Model& model) const {
  Model out = model;
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<std::string> used(out.graph_outputs.begin(),
                               out.graph_outputs.end());
    for (const auto& n : out.nodes)
      for (const auto& in : n.inputs) used.insert(in);
    for (std::size_t i = 0; i < out.nodes.size(); ++i) {
      const ModelNode& n = out.nodes[i];
      const bool live = std::any_of(
          n.outputs.begin(), n.outputs.end(),
          [&](const std::string& o) { return used.count(o) > 0; });
      if (!live) {
        out.nodes.erase(out.nodes.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
        break;
      }
    }
  }
  out.validate();
  return out;
}

}  // namespace d500
