// Static memory planning over a compiled step sequence.
//
// A PlanExecutor plan fixes the order of operator launches before the step
// runs, so every intermediate value's lifetime is a closed interval over
// step indices: defined when its producer runs, dead after its last
// consumer. Values whose intervals do not overlap can share one physical
// buffer — the classic linear-scan register-allocation idea applied to
// activation memory — which is what lets a warm deferred-engine step run
// with zero heap allocations: the buffers are assigned once at compile
// time and simply rewritten every step.
//
// The planner is purely combinatorial (bytes + intervals in, buffer ids
// out); the executor owns the actual storage and the safety rules around
// parallel execution and training (see plan_executor.cpp).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace d500 {

/// Sentinel last_step for values that must survive the whole step
/// (declared outputs; every activation in training mode, since backward
/// reads them all).
inline constexpr int kStepLiveForever = std::numeric_limits<int>::max();

/// One value's storage need over the compiled step sequence.
struct BufferRequest {
  std::size_t bytes = 0;
  int def_step = 0;   // producing step; -1 = live before step 0 (feeds)
  int last_step = 0;  // last consuming step (inclusive), or kStepLiveForever
};

struct MemoryPlan {
  /// placement[i] = buffer id assigned to request i.
  std::vector<int> placement;
  /// Capacity of each buffer: max bytes over the requests assigned to it.
  std::vector<std::size_t> buffer_bytes;
  /// Requests sharing each buffer, in ascending def_step order — the order
  /// the buffer is handed from one value to the next within a step. The
  /// executor derives anti-dependency edges from consecutive pairs when
  /// steps run concurrently.
  std::vector<std::vector<int>> buffer_order;

  std::size_t planned_bytes() const;  // sum of buffer capacities
  std::size_t naive_bytes = 0;        // sum of request bytes (no reuse)
};

/// Greedy interval assignment (linear scan): requests are visited in
/// ascending def_step; a buffer is reusable when its current occupant's
/// last_step is STRICTLY before the new request's def_step (an occupant
/// still read at the defining step must not be overwritten by it). Among
/// reusable buffers the best fit wins: the smallest one large enough, else
/// the largest one (grown to fit). Zero-byte requests get no buffer (-1).
MemoryPlan plan_memory(const std::vector<BufferRequest>& requests);

/// Exhaustive validity check (tests): no two requests with overlapping
/// lifetimes share a buffer, and every buffer holds its occupants.
bool plan_is_valid(const MemoryPlan& plan,
                   const std::vector<BufferRequest>& requests);

}  // namespace d500
