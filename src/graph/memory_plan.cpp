#include "graph/memory_plan.hpp"

#include <algorithm>
#include <numeric>

namespace d500 {

std::size_t MemoryPlan::planned_bytes() const {
  std::size_t total = 0;
  for (std::size_t b : buffer_bytes) total += b;
  return total;
}

MemoryPlan plan_memory(const std::vector<BufferRequest>& requests) {
  MemoryPlan plan;
  plan.placement.assign(requests.size(), -1);
  for (const BufferRequest& r : requests) plan.naive_bytes += r.bytes;

  // Visit requests in ascending def_step (ties by request index, keeping
  // the assignment deterministic and independent of container details).
  std::vector<int> order(requests.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return requests[static_cast<std::size_t>(a)].def_step <
           requests[static_cast<std::size_t>(b)].def_step;
  });

  // occupant_last[b] = last_step of the request currently holding buffer b.
  std::vector<int> occupant_last;
  for (int ri : order) {
    const BufferRequest& r = requests[static_cast<std::size_t>(ri)];
    if (r.bytes == 0) continue;  // empty values need no storage

    // Strict inequality: a value last read at step d must not share a
    // buffer with a value defined at step d (the kernel would overwrite
    // its own input mid-step).
    int best = -1;
    for (int b = 0; b < static_cast<int>(occupant_last.size()); ++b) {
      if (occupant_last[static_cast<std::size_t>(b)] >= r.def_step) continue;
      if (best == -1) {
        best = b;
        continue;
      }
      const std::size_t cand = plan.buffer_bytes[static_cast<std::size_t>(b)];
      const std::size_t cur = plan.buffer_bytes[static_cast<std::size_t>(best)];
      const bool cand_fits = cand >= r.bytes;
      const bool cur_fits = cur >= r.bytes;
      // Prefer the tightest fitting buffer; with no fitting buffer, grow
      // the largest (least added capacity).
      if (cand_fits != cur_fits ? cand_fits
                                : (cand_fits ? cand < cur : cand > cur))
        best = b;
    }

    if (best == -1) {
      best = static_cast<int>(occupant_last.size());
      occupant_last.push_back(r.last_step);
      plan.buffer_bytes.push_back(r.bytes);
      plan.buffer_order.emplace_back();
    } else {
      occupant_last[static_cast<std::size_t>(best)] = r.last_step;
      plan.buffer_bytes[static_cast<std::size_t>(best)] =
          std::max(plan.buffer_bytes[static_cast<std::size_t>(best)], r.bytes);
    }
    plan.placement[static_cast<std::size_t>(ri)] = best;
    plan.buffer_order[static_cast<std::size_t>(best)].push_back(ri);
  }
  return plan;
}

bool plan_is_valid(const MemoryPlan& plan,
                   const std::vector<BufferRequest>& requests) {
  if (plan.placement.size() != requests.size()) return false;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const int bi = plan.placement[i];
    if (requests[i].bytes == 0) {
      if (bi != -1) return false;
      continue;
    }
    if (bi < 0 || bi >= static_cast<int>(plan.buffer_bytes.size())) return false;
    if (plan.buffer_bytes[static_cast<std::size_t>(bi)] < requests[i].bytes)
      return false;
    for (std::size_t j = i + 1; j < requests.size(); ++j) {
      if (plan.placement[j] != bi) continue;
      // Overlap (with the strict-adjacency rule): sharing is legal only
      // when one value's last use is strictly before the other's def.
      const bool i_before_j = requests[i].last_step < requests[j].def_step;
      const bool j_before_i = requests[j].last_step < requests[i].def_step;
      if (!i_before_j && !j_before_i) return false;
    }
  }
  return true;
}

}  // namespace d500
