#include "graph/parallel_executor.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <string_view>
#include <utility>

#include "core/threadpool.hpp"
#include "core/trace.hpp"
#include "ops/conv2d.hpp"

namespace d500 {

namespace {

/// Resolves a value name against feeds, computed activations, then network
/// storage. Returns nullptr when absent.
const Tensor* lookup(const std::string& name, const TensorMap& feeds,
                     const TensorMap& values, const Network& net) {
  if (auto it = values.find(name); it != values.end()) return &it->second;
  if (auto it = feeds.find(name); it != feeds.end()) return &it->second;
  if (net.has_tensor(name)) return &net.fetch_tensor(name);
  return nullptr;
}

/// (consumer topo index, input slot) pairs for every value, in scan order
/// (ascending node, ascending slot).
using ConsumerMap = std::map<std::string, std::vector<std::pair<int, int>>>;

ConsumerMap build_consumers(const std::vector<const Network::Node*>& order) {
  ConsumerMap consumers;
  for (std::size_t i = 0; i < order.size(); ++i)
    for (std::size_t k = 0; k < order[i]->inputs.size(); ++k)
      consumers[order[i]->inputs[k]].emplace_back(static_cast<int>(i),
                                                  static_cast<int>(k));
  return consumers;
}

/// The ReferenceExecutor accumulates gradient contributions while walking
/// nodes in descending topological order, slots ascending within a node.
/// Reproducing that exact order (including move-vs-axpy for the first
/// contribution) is what makes the parallel backward bit-identical.
std::vector<std::pair<int, int>> reference_accumulation_order(
    std::vector<std::pair<int, int>> consumers) {
  std::sort(consumers.begin(), consumers.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  return consumers;
}

}  // namespace

void ParallelExecutor::forward_pass(const TensorMap& feeds, TensorMap& values) {
  const auto order = net_.topological_order();
  const std::size_t n = order.size();

  // Evict cached activations the current graph does not produce, so a
  // stale entry can never shadow a feed or stored tensor in lookup().
  if (!values.empty()) {
    std::set<std::string_view> produced;
    for (const Network::Node* node : order)
      for (const auto& oname : node->outputs) produced.insert(oname);
    for (auto it = values.begin(); it != values.end();) {
      if (produced.count(it->first)) ++it;
      else it = values.erase(it);
    }
  }

  // Compile the dependency-count table: one count per node, one unblock
  // edge per consumed node-produced value.
  std::map<std::string, int> producer;
  for (std::size_t i = 0; i < n; ++i)
    for (const auto& oname : order[i]->outputs)
      producer[oname] = static_cast<int>(i);
  std::vector<std::vector<int>> unblocks(n);
  std::vector<int> deps(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (const auto& iname : order[i]->inputs)
      if (auto it = producer.find(iname);
          it != producer.end() && it->second != static_cast<int>(i)) {
        unblocks[static_cast<std::size_t>(it->second)].push_back(
            static_cast<int>(i));
        ++deps[i];
      }
  if (n == 0) return;

  // One mutex serializes the shared bookkeeping: the values map, the
  // simulated memory accounting, and event hooks. Kernels run outside it.
  std::mutex mu;
  std::size_t live_bytes = 0;
  last_peak_memory_ = 0;

  run_task_graph(unblocks, deps, [&](int idx) {
    const Network::Node* node = order[static_cast<std::size_t>(idx)];
    ConstTensors in;
    MutTensors out;
    {
      std::lock_guard<std::mutex> lock(mu);
      fire({EventPoint::kBeforeOperator, idx, -1, node->name, 0.0});

      std::vector<Shape> in_shapes;
      in.reserve(node->inputs.size());
      for (const auto& iname : node->inputs) {
        const Tensor* t = lookup(iname, feeds, values, net_);
        D500_CHECK_MSG(t != nullptr, "executor: missing value '"
                       << iname << "' for node '" << node->name << "'");
        in.push_back(t);
        in_shapes.push_back(t->shape());
      }

      const auto out_shapes = node->op->output_shapes(in_shapes);
      out.reserve(out_shapes.size());
      for (std::size_t k = 0; k < out_shapes.size(); ++k) {
        // Shape-keyed reuse (see ReferenceExecutor::forward_pass): rewrite
        // the cached buffer in place when the shape still matches.
        Tensor& t = values[node->outputs[k]];
        if (t.shape() != out_shapes[k]) t = Tensor(out_shapes[k]);
        live_bytes += t.bytes();
        out.push_back(&t);
      }

      // Same memory model as the ReferenceExecutor: activations stay live
      // for the whole pass, workspace is transient per operator. (The peak
      // can differ from the serial walk when branches interleave.)
      std::size_t workspace = 0;
      if (const auto* conv = dynamic_cast<const Conv2DOp*>(node->op.get()))
        workspace = conv->workspace_bytes(in_shapes);
      last_peak_memory_ = std::max(last_peak_memory_, live_bytes + workspace);
      if (memory_limit_ != 0 && live_bytes + workspace > memory_limit_)
        throw OutOfMemoryError(
            "executor '" + net_.name() + "': node '" + node->name +
            "' exceeds memory limit (" +
            std::to_string(live_bytes + workspace) + " > " +
            std::to_string(memory_limit_) + " bytes)");
    }

    {
      D500_TRACE_SCOPE("op", node->name);
      node->op->forward(in, out);
    }

    {
      std::lock_guard<std::mutex> lock(mu);
      fire({EventPoint::kAfterOperator, idx, -1, node->name, 0.0});
    }
  });
}

TensorMap ParallelExecutor::inference(const TensorMap& feeds) {
  fire({EventPoint::kBeforeInference, -1, -1, net_.name(), 0.0});
  TensorMap& values = values_;
  forward_pass(feeds, values);
  TensorMap outputs;
  for (const auto& out : net_.outputs()) {
    const Tensor* t = lookup(out, feeds, values, net_);
    D500_CHECK_MSG(t != nullptr, "executor: declared output '" << out
                   << "' was never produced");
    outputs[out] = *t;
  }
  fire({EventPoint::kAfterInference, -1, -1, net_.name(), 0.0});
  return outputs;
}

TensorMap ParallelExecutor::inference_and_backprop(
    const TensorMap& feeds, const std::string& loss_value) {
  fire({EventPoint::kBeforeInference, -1, -1, net_.name(), 0.0});
  TensorMap& values = values_;
  forward_pass(feeds, values);
  fire({EventPoint::kAfterInference, -1, -1, net_.name(), 0.0});

  std::string loss = loss_value;
  if (loss.empty()) {
    D500_CHECK_MSG(!net_.outputs().empty(),
                   "backprop: network has no declared outputs");
    loss = net_.outputs().back();
  }
  const Tensor* loss_t = lookup(loss, feeds, values, net_);
  D500_CHECK_MSG(loss_t != nullptr, "backprop: loss value '" << loss
                 << "' not produced");
  D500_CHECK_MSG(loss_t->elements() == 1,
                 "backprop: loss '" << loss << "' is not a scalar");

  fire({EventPoint::kBeforeBackprop, -1, -1, net_.name(), 0.0});

  const auto order = net_.topological_order();
  const int n = static_cast<int>(order.size());
  const ConsumerMap consumers = build_consumers(order);
  const auto& params = net_.parameters();
  auto is_param = [&](const std::string& name) {
    return std::find(params.begin(), params.end(), name) != params.end();
  };

  // Static participation analysis, mirroring the dynamic skip in the
  // ReferenceExecutor: a node runs backward iff one of its outputs has a
  // gradient, i.e. it is the loss or is consumed by a participating node
  // (consumers sit later in topological order, so a reverse scan settles
  // this in one pass).
  std::vector<char> participates(static_cast<std::size_t>(n), 0);
  for (int i = n - 1; i >= 0; --i) {
    for (const auto& oname : order[static_cast<std::size_t>(i)]->outputs) {
      if (oname == loss) participates[static_cast<std::size_t>(i)] = 1;
      if (auto it = consumers.find(oname); it != consumers.end())
        for (const auto& [c, slot] : it->second)
          if (participates[static_cast<std::size_t>(c)])
            participates[static_cast<std::size_t>(i)] = 1;
    }
  }

  // Compact the participating nodes into a backward task graph: the
  // backward of a producer needs the finished gradient of each output, so
  // it depends on the backward of every participating consumer.
  std::vector<int> task_of(static_cast<std::size_t>(n), -1);
  std::vector<int> topo_of;
  for (int i = 0; i < n; ++i)
    if (participates[static_cast<std::size_t>(i)]) {
      task_of[static_cast<std::size_t>(i)] = static_cast<int>(topo_of.size());
      topo_of.push_back(i);
    }
  const std::size_t nt = topo_of.size();

  // store[i][k]: node i's gradient contribution to its input slot k.
  // Written by node i's backward task, read either by the producer task of
  // that input (which depends on i) or by the serial parameter-gradient
  // assembly after the graph drains — both ordered after the write.
  std::vector<std::vector<Tensor>> store(static_cast<std::size_t>(n));
  std::vector<std::vector<char>> stored(static_cast<std::size_t>(n));

  if (nt > 0) {
    std::vector<std::vector<int>> unblocks(nt);
    std::vector<int> deps(nt, 0);
    for (std::size_t t = 0; t < nt; ++t)
      for (const auto& oname :
           order[static_cast<std::size_t>(topo_of[t])]->outputs)
        if (auto it = consumers.find(oname); it != consumers.end())
          for (const auto& [c, slot] : it->second)
            if (task_of[static_cast<std::size_t>(c)] >= 0) {
              unblocks[static_cast<std::size_t>(
                           task_of[static_cast<std::size_t>(c)])]
                  .push_back(static_cast<int>(t));
              ++deps[t];
            }

    run_task_graph(unblocks, deps, [&](int t) {
      const int i = topo_of[static_cast<std::size_t>(t)];
      const Network::Node* node = order[static_cast<std::size_t>(i)];

      // Assemble each output gradient from the consumers' contributions in
      // the reference accumulation order; seed the loss with 1.
      std::vector<Tensor> grad_hold;
      grad_hold.reserve(node->outputs.size());
      for (const auto& oname : node->outputs) {
        Tensor g;
        bool have = false;
        if (oname == loss) {
          g = Tensor({1});
          g.at(0) = 1.0f;
          have = true;
        }
        if (auto it = consumers.find(oname); it != consumers.end())
          for (const auto& [c, slot] : reference_accumulation_order(it->second)) {
            const auto cu = static_cast<std::size_t>(c);
            const auto su = static_cast<std::size_t>(slot);
            if (!participates[cu] || !stored[cu][su]) continue;
            if (have) {
              axpy(1.0f, store[cu][su], g);
            } else {
              g = std::move(store[cu][su]);
              have = true;
            }
          }
        if (!have) g = Tensor(values.at(oname).shape());  // zero gradient
        grad_hold.push_back(std::move(g));
      }
      ConstTensors grad_out;
      grad_out.reserve(grad_hold.size());
      for (const Tensor& g : grad_hold) grad_out.push_back(&g);

      ConstTensors fwd_in;
      fwd_in.reserve(node->inputs.size());
      for (const auto& iname : node->inputs)
        fwd_in.push_back(lookup(iname, feeds, values, net_));
      ConstTensors fwd_out;
      fwd_out.reserve(node->outputs.size());
      for (const auto& oname : node->outputs)
        fwd_out.push_back(&values.at(oname));

      // An input needs a gradient if it is a parameter or is produced by a
      // node (so the chain continues). Plain feeds (data, labels) do not.
      const auto iu = static_cast<std::size_t>(i);
      store[iu].resize(node->inputs.size());
      stored[iu].assign(node->inputs.size(), 0);
      MutTensors grad_in(node->inputs.size(), nullptr);
      for (std::size_t k = 0; k < node->inputs.size(); ++k) {
        const std::string& iname = node->inputs[k];
        if (is_param(iname) || values.count(iname) > 0) {
          store[iu][k] = Tensor(fwd_in[k]->shape());
          stored[iu][k] = 1;
          grad_in[k] = &store[iu][k];
        }
      }

      {
        D500_TRACE_SCOPE("grad", node->name);
        node->op->backward(grad_out, fwd_in, fwd_out, grad_in);
      }
    });
  }

  // Publish parameter gradients into the network, combining contributions
  // in the same order the reference walk would have.
  for (const auto& [pname, gname] : net_.gradients()) {
    Tensor g;
    bool have = false;
    if (auto it = consumers.find(pname); it != consumers.end())
      for (const auto& [c, slot] : reference_accumulation_order(it->second)) {
        const auto cu = static_cast<std::size_t>(c);
        const auto su = static_cast<std::size_t>(slot);
        if (!participates[cu] || su >= stored[cu].size() || !stored[cu][su])
          continue;
        if (have) {
          axpy(1.0f, store[cu][su], g);
        } else {
          g = std::move(store[cu][su]);
          have = true;
        }
      }
    if (have)
      net_.feed_tensor(gname, std::move(g));
    else
      net_.feed_tensor(gname, Tensor(net_.fetch_tensor(pname).shape()));
  }

  fire({EventPoint::kAfterBackprop, -1, -1, net_.name(),
        static_cast<double>(loss_t->at(0))});

  TensorMap outputs;
  for (const auto& out : net_.outputs()) {
    const Tensor* t = lookup(out, feeds, values, net_);
    if (t) outputs[out] = *t;
  }
  return outputs;
}

}  // namespace d500
