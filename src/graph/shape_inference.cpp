#include "graph/shape_inference.hpp"

#include <algorithm>

#include "ops/conv2d.hpp"

namespace d500 {

std::map<std::string, Shape> infer_shapes(const Model& model) {
  std::map<std::string, Shape> shapes;
  for (const auto& in : model.graph_inputs)
    shapes[in] = model.input_shapes.at(in);
  for (const auto& [name, tensor] : model.initializers)
    shapes[name] = tensor.shape();

  auto& registry = OperatorRegistry::instance();
  for (const auto& node : model.nodes) {
    std::vector<Shape> in_shapes;
    in_shapes.reserve(node.inputs.size());
    for (const auto& in : node.inputs) {
      auto it = shapes.find(in);
      if (it == shapes.end())
        throw ShapeError("infer_shapes: node '" + node.name +
                         "' input '" + in + "' has no shape");
      in_shapes.push_back(it->second);
    }
    const OperatorPtr op = registry.create(node.op_type, node.attrs);
    const auto out_shapes = op->output_shapes(in_shapes);
    D500_CHECK_MSG(out_shapes.size() == node.outputs.size(),
                   "infer_shapes: node '" << node.name
                   << "' output arity mismatch");
    for (std::size_t k = 0; k < out_shapes.size(); ++k)
      shapes[node.outputs[k]] = out_shapes[k];
  }
  return shapes;
}

MemoryEstimate estimate_memory(const Model& model) {
  const auto shapes = infer_shapes(model);
  auto& registry = OperatorRegistry::instance();
  MemoryEstimate est;
  for (const auto& node : model.nodes) {
    for (const auto& out : node.outputs)
      est.activation_bytes +=
          static_cast<std::size_t>(shape_elements(shapes.at(out))) *
          sizeof(float);
    const OperatorPtr op = registry.create(node.op_type, node.attrs);
    if (const auto* conv = dynamic_cast<const Conv2DOp*>(op.get())) {
      std::vector<Shape> in_shapes;
      for (const auto& in : node.inputs) in_shapes.push_back(shapes.at(in));
      est.max_workspace_bytes =
          std::max(est.max_workspace_bytes, conv->workspace_bytes(in_shapes));
    }
  }
  est.peak_bytes = est.activation_bytes + est.max_workspace_bytes;
  return est;
}

}  // namespace d500
