// Model -> Network construction via the Visitor pattern (paper Fig. 4).
//
// A stored Model is walked node-by-node in topological order; for each node
// the visitor's per-op_type hook fires (visit_conv2d, visit_dropout, ... —
// mirroring the paper's OnnxBaseVisitor with visit_sub/visit_mul/etc.).
// The base visitor instantiates operators from the OperatorRegistry;
// framework integrations override hooks to substitute their own kernels —
// exactly how the paper's TensorFlow visitor emits tf ops.
#pragma once

#include "graph/network.hpp"

namespace d500 {

class ModelVisitor {
 public:
  virtual ~ModelVisitor() = default;

  /// Walks the model and constructs the network. Initializers are fed as
  /// stored tensors, trainables are marked, graph inputs/outputs declared.
  Network build(const Model& model);

 protected:
  /// Per-node hook: create and wire the operator(s) for `node` into `net`.
  /// The default dispatches on op_type to the named hooks below; unknown
  /// types fall through to visit_default.
  virtual void visit_node(const ModelNode& node, Network& net);

  // Named hooks, paper-style. Defaults call visit_default.
  virtual void visit_conv2d(const ModelNode& node, Network& net);
  virtual void visit_linear(const ModelNode& node, Network& net);
  virtual void visit_matmul(const ModelNode& node, Network& net);
  virtual void visit_pool(const ModelNode& node, Network& net);
  virtual void visit_activation(const ModelNode& node, Network& net);
  virtual void visit_binary(const ModelNode& node, Network& net);
  virtual void visit_batchnorm(const ModelNode& node, Network& net);
  virtual void visit_dropout(const ModelNode& node, Network& net);
  virtual void visit_softmax(const ModelNode& node, Network& net);
  virtual void visit_loss(const ModelNode& node, Network& net);

  /// Instantiates node.op_type from the registry and wires it verbatim.
  virtual void visit_default(const ModelNode& node, Network& net);

  /// Helper for hooks: wire `op` with the node's own edges.
  void emit(const ModelNode& node, Network& net, OperatorPtr op);
};

/// Builds a Network from a Model with the default (reference) visitor.
Network build_network(const Model& model);

}  // namespace d500
