// constfold: a node whose inputs are all stored, non-trainable,
// non-runtime tensors is evaluated once at plan time; its output becomes a
// stored constant and the node disappears from the step. Only stateless,
// deterministic operators fold (activations, binary arithmetic, bias-add,
// GEMMs) — Dropout draws random masks and BatchNorm mutates running
// statistics, so they never qualify. Trainable inputs disqualify a node:
// folding one would sever its gradient path. The folded operator and its
// operand names are recorded in PassResult::folds so the executor can
// re-evaluate the constant whenever params_version moves (stored tensors
// may be refed at runtime). Evaluation runs the very kernel the node would
// have run, so folded values are bitwise identical.
#include <algorithm>
#include <utility>

#include "graph/passes/pass.hpp"
#include "ops/elementwise.hpp"
#include "ops/gemm.hpp"

namespace d500 {
namespace passes {
namespace {

bool foldable_op(const CustomOperator* op) {
  return dynamic_cast<const ActivationOp*>(op) != nullptr ||
         dynamic_cast<const BinaryOp*>(op) != nullptr ||
         dynamic_cast<const BiasAddOp*>(op) != nullptr ||
         dynamic_cast<const FusedBiasReluOp*>(op) != nullptr ||
         dynamic_cast<const MatMulOp*>(op) != nullptr ||
         dynamic_cast<const LinearOp*>(op) != nullptr;
}

class ConstFoldPass : public GraphPass {
 public:
  std::string name() const override { return "constfold"; }

  int apply(Network& net, PassResult& result) override {
    int rewrites = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Network::Node& n : net.nodes()) {
        if (n.op->num_outputs() != 1) continue;
        if (!foldable_op(n.op.get())) continue;
        if (is_graph_output(net, n.outputs[0])) continue;
        const auto& params = net.parameters();
        const bool eligible = std::all_of(
            n.inputs.begin(), n.inputs.end(), [&](const std::string& in) {
              return net.has_tensor(in) && !is_graph_input(net, in) &&
                     std::find(params.begin(), params.end(), in) ==
                         params.end();
            });
        if (!eligible) continue;

        // Evaluate through the node's own kernel and store the result.
        ConstTensors ins;
        std::vector<Shape> in_shapes;
        for (const std::string& name : n.inputs) {
          const Tensor& t = std::as_const(net).fetch_tensor(name);
          ins.push_back(&t);
          in_shapes.push_back(t.shape());
        }
        Tensor out(n.op->output_shapes(in_shapes)[0]);
        MutTensors outs{&out};
        n.op->forward(ins, outs);

        FoldedConstant fold;
        fold.input_names = n.inputs;
        fold.output_name = n.outputs[0];
        const std::string dead = n.name;
        fold.op = std::move(net.node(dead).op);
        net.feed_tensor(fold.output_name, std::move(out));
        result.folds.push_back(std::move(fold));
        net.remove_node(dead);
        ++rewrites;
        changed = true;
        break;  // node storage moved; restart the scan
      }
    }
    return rewrites;
  }
};

}  // namespace

PassPtr make_constfold_pass() { return std::make_unique<ConstFoldPass>(); }

}  // namespace passes
}  // namespace d500
