// fuse-conv-bn: Conv2D -> BatchNorm (-> ReLU) collapses into one
// FusedConvBnOp owning the original operator instances. Training mode runs
// the same kernels back to back through member scratch (bit-identical,
// ops/fused.hpp); eval mode folds the normalization into the convolution
// weights and biases (documented ULP tolerance). The fusion site is
// recorded in PassResult::bn_fold_sites so the executor can invalidate the
// fold when params_version moves.
#include "graph/passes/pass.hpp"
#include "ops/fused.hpp"

namespace d500 {
namespace passes {
namespace {

class FuseConvBnPass : public GraphPass {
 public:
  std::string name() const override { return "fuse-conv-bn"; }

  int apply(Network& net, PassResult& result) override {
    int rewrites = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Network::Node& n : net.nodes()) {
        if (dynamic_cast<const Conv2DOp*>(n.op.get()) == nullptr) continue;
        Network::Node* bn_node = sole_consumer(net, n.outputs[0]);
        if (bn_node == nullptr) continue;
        if (dynamic_cast<const BatchNormOp*>(bn_node->op.get()) == nullptr)
          continue;
        // The BN node must consume the conv output as X (not gamma/beta).
        if (bn_node->inputs[0] != n.outputs[0]) continue;

        // Optional trailing ReLU (single consumer of the BN output).
        bool with_relu = false;
        Network::Node* relu_node = sole_consumer(net, bn_node->outputs[0]);
        if (relu_node != nullptr) {
          const auto* act =
              dynamic_cast<const ActivationOp*>(relu_node->op.get());
          with_relu = act != nullptr && act->kind() == Activation::kReLU;
        }

        const std::string bn_name = bn_node->name;
        const std::string relu_name = with_relu ? relu_node->name : "";
        std::vector<std::string> ins = n.inputs;  // {X, W, bias}
        ins.push_back(bn_node->inputs[1]);        // gamma
        ins.push_back(bn_node->inputs[2]);        // beta
        std::vector<std::string> outs =
            with_relu ? relu_node->outputs : bn_node->outputs;

        Network::Node& head = net.node(n.name);
        auto conv = std::unique_ptr<Conv2DOp>(
            static_cast<Conv2DOp*>(head.op.release()));
        auto bn = std::unique_ptr<BatchNormOp>(
            static_cast<BatchNormOp*>(net.node(bn_name).op.release()));
        auto fused = std::make_unique<FusedConvBnOp>(std::move(conv),
                                                     std::move(bn), with_relu);
        result.bn_fold_sites.push_back(fused.get());
        head.op = std::move(fused);
        head.op_type = head.op->name();
        head.inputs = std::move(ins);
        head.outputs = std::move(outs);
        net.remove_node(bn_name);
        if (with_relu) net.remove_node(relu_name);
        ++rewrites;
        changed = true;
        break;  // node storage moved; restart the scan
      }
    }
    return rewrites;
  }
};

}  // namespace

PassPtr make_fuse_conv_bn_pass() { return std::make_unique<FuseConvBnPass>(); }

}  // namespace passes
}  // namespace d500
