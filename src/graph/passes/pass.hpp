// Plan-time graph compiler passes (Level 1, paper §IV-D): a pass is an
// in-place rewrite of an instantiated Network that must preserve observable
// semantics — graph outputs and published parameter gradients stay
// bit-identical to the unrewritten graph (or within the documented ULP
// tolerance for folded reductions; see DESIGN.md §10).
//
// Passes run once, at PlanExecutor construction, before any shape
// inference: they may only inspect graph structure and stored tensors,
// never feed shapes. Rewrites mutate head nodes in place (keeping the node
// name, so the stored topological order survives) and remove absorbed
// nodes; they never append nodes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/network.hpp"

namespace d500 {

class FusedConvBnOp;  // ops/fused.hpp

/// Per-pass observability: rewrite count + wall time, mirrored into the
/// trace runtime as a "pass" span and a rewrite counter.
struct PassStats {
  std::string name;
  int rewrites = 0;
  double seconds = 0.0;
};

/// A parameter-only subexpression evaluated at compile time by the
/// constfold pass. The executor re-evaluates it (through the moved-out
/// operator) whenever params_version moves, so optimizer updates to the
/// source parameters propagate into the folded tensor.
struct FoldedConstant {
  OperatorPtr op;                        // the folded-away operator
  std::vector<std::string> input_names;  // stored-tensor operands
  std::string output_name;               // stored tensor holding the result
};

/// Everything the executor needs to keep a rewritten graph fresh across
/// parameter updates, plus the per-pass stats for reporting.
struct PassResult {
  std::vector<PassStats> stats;
  std::vector<FoldedConstant> folds;
  // Conv+BN fusion sites whose eval-mode folded weights must be
  // invalidated when params_version moves.
  std::vector<FusedConvBnOp*> bn_fold_sites;

  int total_rewrites() const;
  const PassStats* find(const std::string& pass_name) const;
  /// True when the executor must watch params_version (any fold present).
  bool needs_refresh() const {
    return !folds.empty() || !bn_fold_sites.empty();
  }
};

class GraphPass {
 public:
  virtual ~GraphPass() = default;
  virtual std::string name() const = 0;
  /// Rewrites `net` in place; returns the number of rewrites applied.
  virtual int apply(Network& net, PassResult& result) = 0;
};

using PassPtr = std::unique_ptr<GraphPass>;

/// Registry of known passes in canonical application order. Built-in
/// passes register at first use (lazy, so static-library dead-stripping
/// cannot lose them); tests may add their own with register_pass.
class PassRegistry {
 public:
  static PassRegistry& instance();

  /// Registers a pass factory at the given pipeline position (ascending
  /// order; built-ins use 10..60). Re-registering a name replaces it.
  void register_pass(int order, std::string name,
                     std::function<PassPtr()> factory);

  /// All registered pass names, in canonical order.
  std::vector<std::string> names() const;
  bool known(const std::string& name) const;
  /// Instantiates a pass by name; throws Error on unknown names.
  PassPtr make(const std::string& name) const;

 private:
  struct Entry {
    int order;
    std::string name;
    std::function<PassPtr()> factory;
  };
  std::vector<Entry> entries_;
};

/// Parses a D500_PASSES-style spec into a canonically-ordered pass list:
///   ""/"all"/"1"   -> every registered pass
///   "none"/"off"/"0" -> no passes
///   "a,b"          -> exactly those passes
///   "all,-dce"     -> everything except dce ("-name" removes, "all" resets)
/// Unknown names throw Error. The result is always in registry order, no
/// matter how the spec lists them.
std::vector<std::string> parse_pass_spec(const std::string& spec);

/// An ordered sequence of passes with tracing. `run` emits one "pass"
/// trace span and one rewrite trace_counter per pass.
class PassPipeline {
 public:
  static PassPipeline from_spec(const std::string& spec);

  PassResult run(Network& net) const;
  const std::vector<std::string>& pass_names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

namespace passes {

// Shared rewrite-eligibility helpers (defined in pass.cpp).

/// Number of node-input references to `value` across the graph (a node
/// consuming the value twice counts twice).
int value_use_count(const Network& net, const std::string& value);
bool is_graph_output(const Network& net, const std::string& value);
bool is_graph_input(const Network& net, const std::string& value);
/// The single consuming node, or nullptr when the value has != 1 use or is
/// also a declared graph output (fusing past an exported edge would change
/// observable results). Pointer is invalidated by any node add/remove.
Network::Node* sole_consumer(Network& net, const std::string& value);

// Built-in pass factories (one translation unit each).
PassPtr make_constfold_pass();
PassPtr make_fuse_conv_bn_pass();
PassPtr make_fuse_bias_relu_pass();
PassPtr make_fuse_epilogue_pass();
PassPtr make_fuse_elementwise_pass();
PassPtr make_dce_pass();

}  // namespace passes

}  // namespace d500
