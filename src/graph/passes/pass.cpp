#include "graph/passes/pass.hpp"

#include <algorithm>

#include "core/timer.hpp"
#include "core/trace.hpp"

namespace d500 {

int PassResult::total_rewrites() const {
  int n = 0;
  for (const PassStats& s : stats) n += s.rewrites;
  return n;
}

const PassStats* PassResult::find(const std::string& pass_name) const {
  for (const PassStats& s : stats)
    if (s.name == pass_name) return &s;
  return nullptr;
}

namespace {

// Canonical pipeline order. Constant folding runs first so later fusions
// see the simplified graph; conv+bn fuses before the generic epilogue pass
// (which would otherwise claim the conv's ReLU); DCE runs last to sweep
// anything the other passes orphaned.
void register_builtin_passes(PassRegistry& reg) {
  reg.register_pass(10, "constfold", passes::make_constfold_pass);
  reg.register_pass(20, "fuse-conv-bn", passes::make_fuse_conv_bn_pass);
  reg.register_pass(30, "fuse-bias-relu", passes::make_fuse_bias_relu_pass);
  reg.register_pass(40, "fuse-epilogue", passes::make_fuse_epilogue_pass);
  reg.register_pass(50, "fuse-elementwise", passes::make_fuse_elementwise_pass);
  reg.register_pass(60, "dce", passes::make_dce_pass);
}

}  // namespace

PassRegistry& PassRegistry::instance() {
  static PassRegistry* reg = [] {
    auto* r = new PassRegistry();
    register_builtin_passes(*r);
    return r;
  }();
  return *reg;
}

void PassRegistry::register_pass(int order, std::string name,
                                 std::function<PassPtr()> factory) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      e.order = order;
      e.factory = std::move(factory);
      std::stable_sort(entries_.begin(), entries_.end(),
                       [](const Entry& a, const Entry& b) {
                         return a.order < b.order;
                       });
      return;
    }
  }
  entries_.push_back(Entry{order, std::move(name), std::move(factory)});
  std::stable_sort(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.order < b.order; });
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

bool PassRegistry::known(const std::string& name) const {
  for (const Entry& e : entries_)
    if (e.name == name) return true;
  return false;
}

PassPtr PassRegistry::make(const std::string& name) const {
  for (const Entry& e : entries_)
    if (e.name == name) return e.factory();
  throw Error("unknown graph pass '" + name + "'");
}

std::vector<std::string> parse_pass_spec(const std::string& spec) {
  PassRegistry& reg = PassRegistry::instance();
  const std::vector<std::string> all = reg.names();

  std::vector<std::string> selected;
  const auto add = [&](const std::string& n) {
    if (std::find(selected.begin(), selected.end(), n) == selected.end())
      selected.push_back(n);
  };
  const auto remove = [&](const std::string& n) {
    selected.erase(std::remove(selected.begin(), selected.end(), n),
                   selected.end());
  };

  std::size_t pos = 0;
  bool any_token = false;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string tok = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace.
    const std::size_t b = tok.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    tok = tok.substr(b, tok.find_last_not_of(" \t") - b + 1);
    any_token = true;

    if (tok == "all" || tok == "1") {
      for (const std::string& n : all) add(n);
    } else if (tok == "none" || tok == "off" || tok == "0") {
      selected.clear();
    } else if (tok[0] == '-') {
      const std::string n = tok.substr(1);
      if (!reg.known(n)) throw Error("unknown graph pass '" + n + "'");
      remove(n);
    } else {
      if (!reg.known(tok)) throw Error("unknown graph pass '" + tok + "'");
      add(tok);
    }
  }
  if (!any_token)  // empty spec means default-on
    return all;

  // Canonical order regardless of how the spec listed them.
  std::vector<std::string> ordered;
  for (const std::string& n : all)
    if (std::find(selected.begin(), selected.end(), n) != selected.end())
      ordered.push_back(n);
  return ordered;
}

PassPipeline PassPipeline::from_spec(const std::string& spec) {
  PassPipeline p;
  p.names_ = parse_pass_spec(spec);
  return p;
}

PassResult PassPipeline::run(Network& net) const {
  PassResult result;
  for (const std::string& name : names_) {
    PassPtr pass = PassRegistry::instance().make(name);
    Timer timer;
    int rewrites = 0;
    {
      TraceSpan span("pass", name);
      rewrites = pass->apply(net, result);
    }
    trace_counter("pass", name + ".rewrites", static_cast<double>(rewrites));
    result.stats.push_back(PassStats{name, rewrites, timer.seconds()});
  }
  return result;
}

namespace passes {

int value_use_count(const Network& net, const std::string& value) {
  int uses = 0;
  for (const Network::Node& n : net.nodes())
    for (const std::string& in : n.inputs)
      if (in == value) ++uses;
  return uses;
}

bool is_graph_output(const Network& net, const std::string& value) {
  const auto& outs = net.outputs();
  return std::find(outs.begin(), outs.end(), value) != outs.end();
}

bool is_graph_input(const Network& net, const std::string& value) {
  const auto& ins = net.inputs();
  return std::find(ins.begin(), ins.end(), value) != ins.end();
}

Network::Node* sole_consumer(Network& net, const std::string& value) {
  if (is_graph_output(net, value)) return nullptr;
  if (value_use_count(net, value) != 1) return nullptr;
  for (const Network::Node& n : net.nodes())
    for (const std::string& in : n.inputs)
      if (in == value) return &net.node(n.name);
  return nullptr;
}

}  // namespace passes

}  // namespace d500
