// fuse-bias-relu: BiasAdd -> ReLU (single consumer) becomes one
// FusedBiasRelu node — the operation-fusion optimization the paper
// attributes to Caffe2 kernels (Use Case 1). Ported from the legacy
// Model-level FuseBiasReluTransform onto the Network pass framework; the
// fused kernel applies max(x + b, 0) in one pass over memory, and its
// backward matches the unfused pair bitwise (the store/load round trip
// between BiasAdd and ReLU is exact).
#include "graph/passes/pass.hpp"
#include "ops/elementwise.hpp"

namespace d500 {
namespace passes {
namespace {

class FuseBiasReluPass : public GraphPass {
 public:
  std::string name() const override { return "fuse-bias-relu"; }

  int apply(Network& net, PassResult&) override {
    int rewrites = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Network::Node& n : net.nodes()) {
        if (dynamic_cast<const BiasAddOp*>(n.op.get()) == nullptr) continue;
        Network::Node* next = sole_consumer(net, n.outputs[0]);
        if (next == nullptr) continue;
        const auto* act = dynamic_cast<const ActivationOp*>(next->op.get());
        if (act == nullptr || act->kind() != Activation::kReLU) continue;

        // Mutate the BiasAdd node in place (keeps its position in the
        // stored topological order), then drop the absorbed ReLU node.
        const std::string dead = next->name;
        std::vector<std::string> outs = next->outputs;
        Network::Node& head = net.node(n.name);
        head.op = std::make_unique<FusedBiasReluOp>();
        head.op_type = head.op->name();
        head.outputs = std::move(outs);
        net.remove_node(dead);
        ++rewrites;
        changed = true;
        break;  // node storage moved; restart the scan
      }
    }
    return rewrites;
  }
};

}  // namespace

PassPtr make_fuse_bias_relu_pass() { return std::make_unique<FuseBiasReluPass>(); }

}  // namespace passes
}  // namespace d500
