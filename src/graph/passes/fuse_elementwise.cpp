// fuse-elementwise: a single-consumer chain of unary activations
// (ReLU/Sigmoid/Tanh) collapses into one FusedElementwiseOp — one pass
// over memory instead of m, with the backward recomputing the chain per
// SIMD lane in registers. Runs after fuse-epilogue, so only chains the
// epilogue pass could not absorb (not behind a compute op, or overflowing
// its kMaxActivationChain slots) remain. Bitwise-equal to the unfused
// chain: same SIMD kernels, same
// evaluation order, +0.0 on the internal gradient hops (ops/fused.hpp).
#include "graph/passes/pass.hpp"
#include "ops/fused.hpp"

namespace d500 {
namespace passes {
namespace {

class FuseElementwisePass : public GraphPass {
 public:
  std::string name() const override { return "fuse-elementwise"; }

  int apply(Network& net, PassResult&) override {
    int rewrites = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Network::Node& n : net.nodes()) {
        const auto* head_act = dynamic_cast<const ActivationOp*>(n.op.get());
        if (head_act == nullptr) continue;

        // Greedily extend the chain while each intermediate feeds exactly
        // one downstream activation and nothing else (multi-consumer or
        // exported intermediates stop the chain — fusing past them would
        // change observable values).
        std::vector<Activation> kinds{head_act->kind()};
        std::vector<std::string> absorbed;
        std::string tail_out = n.outputs[0];
        while (kinds.size() < FusedElementwiseOp::kMaxChain) {
          Network::Node* next = sole_consumer(net, tail_out);
          if (next == nullptr) break;
          const auto* act = dynamic_cast<const ActivationOp*>(next->op.get());
          if (act == nullptr) break;
          kinds.push_back(act->kind());
          absorbed.push_back(next->name);
          tail_out = next->outputs[0];
        }
        if (kinds.size() < 2) continue;

        Network::Node& head = net.node(n.name);
        head.op = std::make_unique<FusedElementwiseOp>(std::move(kinds));
        head.op_type = head.op->name();
        head.outputs = {tail_out};
        for (const std::string& dead : absorbed) net.remove_node(dead);
        ++rewrites;
        changed = true;
        break;  // node storage moved; restart the scan
      }
    }
    return rewrites;
  }
};

}  // namespace

PassPtr make_fuse_elementwise_pass() {
  return std::make_unique<FuseElementwisePass>();
}

}  // namespace passes
}  // namespace d500
