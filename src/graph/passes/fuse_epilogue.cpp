// fuse-epilogue: MatMul/Linear/Conv2D followed by a single-consumer chain
// of unary activations folds into the compute op's epilogue chain (up to
// kMaxActivationChain links, absorbed link by link by the fixpoint loop
// below). Under EpilogueMode::kFused the chain applies in registers at the
// kernel's tile-store/scatter time — Linear/MatMul/Conv + bias + activation
// chain compiles to ONE kernel launch with zero extra passes over the
// output; under kPost (the differential oracle) it runs as the pre-fusion
// in-place sweeps. Both are bit-identical to the unfused graph: same SIMD
// activation kernels, and the backward gives every absorbed gradient hop
// the +0.0f that reproduces the executor's zeroed-scratch axpy on the
// removed edges (ops/elementwise.hpp EpilogueChain).
#include "graph/passes/pass.hpp"
#include "ops/conv2d.hpp"
#include "ops/gemm.hpp"

namespace d500 {
namespace passes {
namespace {

// Appends one link to the node's epilogue chain when the operator supports
// one and the chain has room; returns false otherwise.
bool try_fuse(CustomOperator* op, Activation kind) {
  if (auto* mm = dynamic_cast<MatMulOp*>(op)) return mm->try_fuse_epilogue(kind);
  if (auto* lin = dynamic_cast<LinearOp*>(op)) return lin->try_fuse_epilogue(kind);
  if (auto* conv = dynamic_cast<Conv2DOp*>(op)) return conv->try_fuse_epilogue(kind);
  return false;
}

class FuseEpiloguePass : public GraphPass {
 public:
  std::string name() const override { return "fuse-epilogue"; }

  int apply(Network& net, PassResult&) override {
    int rewrites = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Network::Node& n : net.nodes()) {
        Network::Node* next = sole_consumer(net, n.outputs[0]);
        if (next == nullptr) continue;
        const auto* act = dynamic_cast<const ActivationOp*>(next->op.get());
        if (act == nullptr) continue;
        if (!try_fuse(n.op.get(), act->kind())) continue;

        const std::string dead = next->name;
        std::vector<std::string> outs = next->outputs;
        Network::Node& head = net.node(n.name);
        head.outputs = std::move(outs);
        net.remove_node(dead);
        ++rewrites;
        changed = true;
        break;  // node storage moved; restart the scan
      }
    }
    return rewrites;
  }
};

}  // namespace

PassPtr make_fuse_epilogue_pass() { return std::make_unique<FuseEpiloguePass>(); }

}  // namespace passes
}  // namespace d500
