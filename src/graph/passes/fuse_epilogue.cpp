// fuse-epilogue: MatMul/Linear/Conv2D followed by a single-consumer unary
// activation folds into the compute op's epilogue — the activation runs in
// place over the GEMM/conv output while it is still cache-resident, and
// the op's backward converts dY to the pre-activation gradient before the
// usual weight/input gradient kernels. Bit-identical to the unfused pair:
// the epilogue uses the same SIMD activation kernels, and the backward's
// leading +0.0f reproduces the executor's zeroed-scratch axpy hop on the
// removed edge (ops/elementwise.hpp).
#include "graph/passes/pass.hpp"
#include "ops/conv2d.hpp"
#include "ops/gemm.hpp"

namespace d500 {
namespace passes {
namespace {

// Installs the epilogue when the node's operator supports one and has none
// yet; returns false otherwise.
bool try_set_epilogue(CustomOperator* op, Activation kind) {
  if (auto* mm = dynamic_cast<MatMulOp*>(op)) {
    if (mm->epilogue()) return false;
    mm->set_epilogue(kind);
    return true;
  }
  if (auto* lin = dynamic_cast<LinearOp*>(op)) {
    if (lin->epilogue()) return false;
    lin->set_epilogue(kind);
    return true;
  }
  if (auto* conv = dynamic_cast<Conv2DOp*>(op)) {
    if (conv->epilogue()) return false;
    conv->set_epilogue(kind);
    return true;
  }
  return false;
}

class FuseEpiloguePass : public GraphPass {
 public:
  std::string name() const override { return "fuse-epilogue"; }

  int apply(Network& net, PassResult&) override {
    int rewrites = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Network::Node& n : net.nodes()) {
        Network::Node* next = sole_consumer(net, n.outputs[0]);
        if (next == nullptr) continue;
        const auto* act = dynamic_cast<const ActivationOp*>(next->op.get());
        if (act == nullptr) continue;
        if (!try_set_epilogue(n.op.get(), act->kind())) continue;

        const std::string dead = next->name;
        std::vector<std::string> outs = next->outputs;
        Network::Node& head = net.node(n.name);
        head.outputs = std::move(outs);
        net.remove_node(dead);
        ++rewrites;
        changed = true;
        break;  // node storage moved; restart the scan
      }
    }
    return rewrites;
  }
};

}  // namespace

PassPtr make_fuse_epilogue_pass() { return std::make_unique<FuseEpiloguePass>(); }

}  // namespace passes
}  // namespace d500
