// dce: removes nodes none of whose outputs are consumed or exported.
// Ported from the legacy Model-level DeadNodeElimination, generalized to
// training graphs: a node whose forward output is unused receives an
// all-zero output gradient during backprop, and every operator's backward
// maps a zero dY to zero input gradients, so removing the node leaves all
// published parameter gradients bitwise unchanged (zeroed scratch plus an
// axpy of zeros is the value the unpruned graph computed). Runs last so it
// sweeps anything the fusion passes orphaned.
#include <set>

#include "graph/passes/pass.hpp"

namespace d500 {
namespace passes {
namespace {

class DcePass : public GraphPass {
 public:
  std::string name() const override { return "dce"; }

  int apply(Network& net, PassResult&) override {
    int rewrites = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      std::set<std::string> used(net.outputs().begin(), net.outputs().end());
      for (const Network::Node& n : net.nodes())
        for (const std::string& in : n.inputs) used.insert(in);
      for (const Network::Node& n : net.nodes()) {
        bool live = false;
        for (const std::string& out : n.outputs)
          if (used.count(out) > 0) live = true;
        if (live) continue;
        const std::string dead = n.name;
        net.remove_node(dead);
        ++rewrites;
        changed = true;
        break;  // node storage moved; recompute the use set
      }
    }
    return rewrites;
  }
};

}  // namespace

PassPtr make_dce_pass() { return std::make_unique<DcePass>(); }

}  // namespace passes
}  // namespace d500
