#include <algorithm>
#include <set>
#include <string_view>

#include "core/stats.hpp"
#include "core/timer.hpp"
#include "core/trace.hpp"
#include "graph/executor.hpp"
#include "ops/conv2d.hpp"

namespace d500 {

namespace {

/// Resolves a value name against feeds, computed activations, then network
/// storage. Returns nullptr when absent.
const Tensor* lookup(const std::string& name, const TensorMap& feeds,
                     const TensorMap& values, const Network& net) {
  if (auto it = values.find(name); it != values.end()) return &it->second;
  if (auto it = feeds.find(name); it != feeds.end()) return &it->second;
  if (net.has_tensor(name)) return &net.fetch_tensor(name);
  return nullptr;
}

}  // namespace

void ReferenceExecutor::forward_pass(const TensorMap& feeds,
                                     TensorMap& values) {
  std::size_t live_bytes = 0;
  last_peak_memory_ = 0;
  const auto order = net_.topological_order();

  // Evict cached activations the current graph does not produce, so a
  // stale entry can never shadow a feed or stored tensor in lookup().
  if (!values.empty()) {
    std::set<std::string_view> produced;
    for (const Network::Node* node : order)
      for (const auto& oname : node->outputs) produced.insert(oname);
    for (auto it = values.begin(); it != values.end();) {
      if (produced.count(it->first)) ++it;
      else it = values.erase(it);
    }
  }

  std::int64_t op_index = 0;
  for (const Network::Node* node : order) {
    fire({EventPoint::kBeforeOperator, op_index, -1, node->name, 0.0});

    ConstTensors in;
    std::vector<Shape> in_shapes;
    in.reserve(node->inputs.size());
    for (const auto& iname : node->inputs) {
      const Tensor* t = lookup(iname, feeds, values, net_);
      D500_CHECK_MSG(t != nullptr, "executor: missing value '"
                     << iname << "' for node '" << node->name << "'");
      in.push_back(t);
      in_shapes.push_back(t->shape());
    }

    const auto out_shapes = node->op->output_shapes(in_shapes);
    MutTensors out;
    out.reserve(out_shapes.size());
    for (std::size_t k = 0; k < out_shapes.size(); ++k) {
      // Shape-keyed reuse: rewrite the cached buffer in place when the
      // shape still matches (operators fully overwrite their outputs —
      // the invariant all activation reuse in this codebase relies on).
      Tensor& t = values[node->outputs[k]];
      if (t.shape() != out_shapes[k]) t = Tensor(out_shapes[k]);
      live_bytes += t.bytes();
      out.push_back(&t);
    }

    // Memory model: activations stay live for the whole pass (they are
    // needed by backprop); workspace is transient per operator.
    std::size_t workspace = 0;
    if (const auto* conv = dynamic_cast<const Conv2DOp*>(node->op.get()))
      workspace = conv->workspace_bytes(in_shapes);
    last_peak_memory_ = std::max(last_peak_memory_, live_bytes + workspace);
    if (memory_limit_ != 0 && live_bytes + workspace > memory_limit_)
      throw OutOfMemoryError(
          "executor '" + net_.name() + "': node '" + node->name +
          "' exceeds memory limit (" + std::to_string(live_bytes + workspace) +
          " > " + std::to_string(memory_limit_) + " bytes)");

    if (collect_op_times_) {
      D500_TRACE_SCOPE("op", node->name);
      Timer t;
      node->op->forward(in, out);
      op_times_[node->name].push_back(t.seconds());
    } else {
      D500_TRACE_SCOPE("op", node->name);
      node->op->forward(in, out);
    }

    fire({EventPoint::kAfterOperator, op_index, -1, node->name, 0.0});
    ++op_index;
  }
}

TensorMap ReferenceExecutor::inference(const TensorMap& feeds) {
  fire({EventPoint::kBeforeInference, -1, -1, net_.name(), 0.0});
  TensorMap& values = values_;
  forward_pass(feeds, values);
  TensorMap outputs;
  for (const auto& out : net_.outputs()) {
    const Tensor* t = lookup(out, feeds, values, net_);
    D500_CHECK_MSG(t != nullptr, "executor: declared output '" << out
                   << "' was never produced");
    outputs[out] = *t;
  }
  fire({EventPoint::kAfterInference, -1, -1, net_.name(), 0.0});
  return outputs;
}

TensorMap ReferenceExecutor::inference_and_backprop(
    const TensorMap& feeds, const std::string& loss_value) {
  fire({EventPoint::kBeforeInference, -1, -1, net_.name(), 0.0});
  TensorMap& values = values_;
  forward_pass(feeds, values);
  fire({EventPoint::kAfterInference, -1, -1, net_.name(), 0.0});

  std::string loss = loss_value;
  if (loss.empty()) {
    D500_CHECK_MSG(!net_.outputs().empty(),
                   "backprop: network has no declared outputs");
    loss = net_.outputs().back();
  }
  const Tensor* loss_t = lookup(loss, feeds, values, net_);
  D500_CHECK_MSG(loss_t != nullptr, "backprop: loss value '" << loss
                 << "' not produced");
  D500_CHECK_MSG(loss_t->elements() == 1,
                 "backprop: loss '" << loss << "' is not a scalar");

  fire({EventPoint::kBeforeBackprop, -1, -1, net_.name(), 0.0});

  // Which values need gradients: parameters, plus everything on a path from
  // a parameter or a differentiable chain to the loss. We conservatively
  // propagate to every node-produced value and every parameter.
  TensorMap grads;
  {
    Tensor seed({1});
    seed.at(0) = 1.0f;
    grads[loss] = std::move(seed);
  }

  const auto order = net_.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Network::Node* node = *it;
    // Gather output gradients; skip the node entirely when none of its
    // outputs influence the loss.
    bool any = false;
    for (const auto& oname : node->outputs)
      if (grads.count(oname)) any = true;
    if (!any) continue;

    ConstTensors grad_out;
    std::vector<Tensor> zero_store;
    zero_store.reserve(node->outputs.size());
    for (const auto& oname : node->outputs) {
      if (auto git = grads.find(oname); git != grads.end()) {
        grad_out.push_back(&git->second);
      } else {
        zero_store.emplace_back(values.at(oname).shape());
        grad_out.push_back(&zero_store.back());
      }
    }

    ConstTensors fwd_in;
    for (const auto& iname : node->inputs)
      fwd_in.push_back(lookup(iname, feeds, values, net_));
    ConstTensors fwd_out;
    for (const auto& oname : node->outputs) fwd_out.push_back(&values.at(oname));

    // An input needs a gradient if it is a parameter or is produced by a
    // node (so the chain continues). Plain feeds (data, labels) do not.
    std::vector<Tensor> grad_store(node->inputs.size());
    MutTensors grad_in(node->inputs.size(), nullptr);
    const auto& params = net_.parameters();
    for (std::size_t k = 0; k < node->inputs.size(); ++k) {
      const std::string& iname = node->inputs[k];
      const bool is_param =
          std::find(params.begin(), params.end(), iname) != params.end();
      const bool is_activation = values.count(iname) > 0;
      if (is_param || is_activation) {
        grad_store[k] = Tensor(fwd_in[k]->shape());
        grad_in[k] = &grad_store[k];
      }
    }

    {
      D500_TRACE_SCOPE("grad", node->name);
      node->op->backward(grad_out, fwd_in, fwd_out, grad_in);
    }

    for (std::size_t k = 0; k < node->inputs.size(); ++k) {
      if (!grad_in[k]) continue;
      const std::string& iname = node->inputs[k];
      if (auto git = grads.find(iname); git != grads.end()) {
        // Value consumed by multiple nodes: accumulate.
        axpy(1.0f, grad_store[k], git->second);
      } else {
        grads[iname] = std::move(grad_store[k]);
      }
    }
  }

  // Publish parameter gradients into the network.
  for (const auto& [pname, gname] : net_.gradients()) {
    auto git = grads.find(pname);
    if (git != grads.end())
      net_.feed_tensor(gname, std::move(git->second));
    else
      net_.feed_tensor(gname, Tensor(net_.fetch_tensor(pname).shape()));
  }

  fire({EventPoint::kAfterBackprop, -1, -1, net_.name(),
        static_cast<double>(loss_t->at(0))});

  TensorMap outputs;
  for (const auto& out : net_.outputs()) {
    const Tensor* t = lookup(out, feeds, values, net_);
    if (t) outputs[out] = *t;
  }
  return outputs;
}

FrameworkOverheadResult measure_framework_overhead(ReferenceExecutor& exec,
                                                   const TensorMap& feeds,
                                                   int reruns) {
  // Whole-graph timing without per-op instrumentation.
  exec.set_collect_op_times(false);
  std::vector<double> whole;
  for (int r = 0; r < reruns; ++r) {
    Timer t;
    exec.inference(feeds);
    whole.push_back(t.seconds());
  }
  // Per-op timing.
  exec.clear_op_times();
  exec.set_collect_op_times(true);
  for (int r = 0; r < reruns; ++r) exec.inference(feeds);
  exec.set_collect_op_times(false);

  std::vector<double> sums(static_cast<std::size_t>(reruns), 0.0);
  for (const auto& [_, times] : exec.op_times())
    for (std::size_t r = 0; r < sums.size() && r < times.size(); ++r)
      sums[r] += times[r];

  FrameworkOverheadResult res;
  res.whole_graph_seconds = median(whole);
  res.sum_of_ops_seconds = median(sums);
  if (res.whole_graph_seconds > 0.0)
    res.overhead_fraction =
        (res.whole_graph_seconds - res.sum_of_ops_seconds) /
        res.whole_graph_seconds;
  return res;
}

}  // namespace d500
