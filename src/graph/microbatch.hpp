// Micro-batching transformation (paper §V-C, Fig. 7; after Oyama et al.,
// "Accelerating deep learning frameworks with micro-batches").
//
// Each Conv2D whose workspace exceeds the memory budget is rewritten to
//   Split(axis 0) -> k micro-batch Conv2Ds -> Concat(axis 0),
// with the micro-batch sizes (and per-size convolution algorithm) chosen by
// an exact solver. The paper formulates the choice as an ILP maximizing
// performance under a memory-utilization constraint; for this split
// structure the optimum is computed exactly by dynamic programming over the
// remaining batch, which solves the same optimization problem.
#pragma once

#include <functional>

#include "graph/transforms.hpp"
#include "ops/conv2d.hpp"

namespace d500 {

/// Cost/feasibility of running one micro-batch of a given size.
struct MicrobatchOption {
  std::int64_t size = 0;
  double cost_seconds = 0.0;   // measured or modeled runtime of this size
  std::size_t memory_bytes = 0;  // workspace at this size
  ConvBackend backend = ConvBackend::kIm2col;  // best algorithm at this size
};

/// cost model: size -> option. Callers measure (bench) or model (tests).
using MicrobatchCostFn = std::function<MicrobatchOption(std::int64_t size)>;

struct MicrobatchPlan {
  std::vector<std::int64_t> sizes;   // split sizes, sum == batch
  std::vector<ConvBackend> backends; // per chunk
  double predicted_cost = 0.0;
  bool feasible = false;
};

/// Exact DP: minimize sum of chunk costs subject to every chunk's workspace
/// fitting in `memory_budget`. `candidate_sizes` bounds the search (pass
/// the divisors/powers you are willing to run). Infeasible when no
/// candidate size fits the budget.
MicrobatchPlan solve_microbatch(std::int64_t batch,
                                std::size_t memory_budget,
                                const std::vector<std::int64_t>& candidate_sizes,
                                const MicrobatchCostFn& cost);

/// The graph rewrite. Applies to every Conv2D node whose im2col workspace
/// (at the inferred input shape) exceeds `memory_budget`; other nodes are
/// untouched. Chunk sizes come from solve_microbatch with the given cost
/// function (default: proportional-cost model using workspace bytes).
class MicrobatchTransform : public GraphTransform {
 public:
  MicrobatchTransform(std::size_t memory_budget,
                      std::vector<std::int64_t> candidate_sizes,
                      MicrobatchCostFn cost = nullptr)
      : budget_(memory_budget),
        candidates_(std::move(candidate_sizes)),
        cost_(std::move(cost)) {}

  std::string name() const override { return "microbatch"; }
  Model apply(const Model& model) const override;

 private:
  std::size_t budget_;
  std::vector<std::int64_t> candidates_;
  MicrobatchCostFn cost_;
};

/// Workspace bytes of a Conv2D over an input of shape x with F filters.
std::size_t conv_workspace_bytes(const Shape& x_shape, std::int64_t filters,
                                 const Conv2DParams& p);

}  // namespace d500
