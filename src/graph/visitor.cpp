#include "graph/visitor.hpp"

namespace d500 {

Network ModelVisitor::build(const Model& model) {
  model.validate();
  Network net(model.name);
  for (const auto& in : model.graph_inputs)
    net.declare_input(in, model.input_shapes.at(in));
  for (const auto& [name, tensor] : model.initializers)
    net.feed_tensor(name, tensor);
  for (const auto& name : model.trainable) net.mark_parameter(name);
  for (const auto& node : model.nodes) visit_node(node, net);
  for (const auto& out : model.graph_outputs) net.declare_output(out);
  return net;
}

void ModelVisitor::visit_node(const ModelNode& node, Network& net) {
  const std::string& t = node.op_type;
  if (t == "Conv2D") return visit_conv2d(node, net);
  if (t == "Linear") return visit_linear(node, net);
  if (t == "MatMul") return visit_matmul(node, net);
  if (t == "MaxPool2D" || t == "AvgPool2D" || t == "MedianPool2D" ||
      t == "GlobalAvgPool")
    return visit_pool(node, net);
  if (t == "ReLU" || t == "Sigmoid" || t == "Tanh")
    return visit_activation(node, net);
  if (t == "Add" || t == "Sub" || t == "Mul") return visit_binary(node, net);
  if (t == "BatchNorm") return visit_batchnorm(node, net);
  if (t == "Dropout") return visit_dropout(node, net);
  if (t == "Softmax") return visit_softmax(node, net);
  if (t == "SoftmaxCrossEntropy" || t == "MSELoss")
    return visit_loss(node, net);
  visit_default(node, net);
}

void ModelVisitor::visit_conv2d(const ModelNode& n, Network& net) { visit_default(n, net); }
void ModelVisitor::visit_linear(const ModelNode& n, Network& net) { visit_default(n, net); }
void ModelVisitor::visit_matmul(const ModelNode& n, Network& net) { visit_default(n, net); }
void ModelVisitor::visit_pool(const ModelNode& n, Network& net) { visit_default(n, net); }
void ModelVisitor::visit_activation(const ModelNode& n, Network& net) { visit_default(n, net); }
void ModelVisitor::visit_binary(const ModelNode& n, Network& net) { visit_default(n, net); }
void ModelVisitor::visit_batchnorm(const ModelNode& n, Network& net) { visit_default(n, net); }
void ModelVisitor::visit_dropout(const ModelNode& n, Network& net) { visit_default(n, net); }
void ModelVisitor::visit_softmax(const ModelNode& n, Network& net) { visit_default(n, net); }
void ModelVisitor::visit_loss(const ModelNode& n, Network& net) { visit_default(n, net); }

void ModelVisitor::visit_default(const ModelNode& node, Network& net) {
  emit(node, net, OperatorRegistry::instance().create(node.op_type, node.attrs));
}

void ModelVisitor::emit(const ModelNode& node, Network& net, OperatorPtr op) {
  net.add_node(node.name, std::move(op), node.inputs, node.outputs,
               node.op_type);
}

Network build_network(const Model& model) {
  ModelVisitor visitor;
  return visitor.build(model);
}

}  // namespace d500
