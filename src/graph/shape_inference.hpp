// Whole-model shape inference and activation-memory estimation, built on
// each operator's output_shapes contract. Used by transforms (to rewrite
// shapes consistently) and by the micro-batching solver's memory model.
#pragma once

#include "graph/model.hpp"

namespace d500 {

/// Shape of every value in the model (inputs, initializers, and all node
/// outputs). Throws ShapeError on inconsistency.
std::map<std::string, Shape> infer_shapes(const Model& model);

struct MemoryEstimate {
  /// Sum of all node-output activation bytes for one forward pass.
  std::size_t activation_bytes = 0;
  /// Largest single operator workspace (conv lowering buffers).
  std::size_t max_workspace_bytes = 0;
  /// activation_bytes + max_workspace_bytes: what a forward pass needs when
  /// activations are retained for backprop (the executor's model).
  std::size_t peak_bytes = 0;
};

MemoryEstimate estimate_memory(const Model& model);

}  // namespace d500
