// Level 1 Network: the in-memory, object-oriented DNN representation
// (paper §IV-D). Where the Python Deep500 uses a networkx graph, this class
// owns instantiated CustomOperators wired by named edges, and exposes the
// paper's graph API: add/remove nodes, fetch node data, feed new values,
// enumerate parameters and their gradients.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "graph/model.hpp"
#include "ops/operator.hpp"

namespace d500 {

using TensorMap = std::map<std::string, Tensor>;

class Network {
 public:
  struct Node {
    std::string name;
    std::string op_type;
    OperatorPtr op;
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
  };

  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  // Non-copyable (owns operator instances), movable.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  const std::string& name() const { return name_; }

  /// Adds a node with an already-instantiated operator. Node names must be
  /// unique; output edges must not collide with existing values.
  void add_node(std::string node_name, OperatorPtr op,
                std::vector<std::string> inputs,
                std::vector<std::string> outputs,
                const std::string& op_type = "");

  /// Removes a node by name (edges remain as dangling names; callers
  /// re-wire explicitly — mirrors the paper's low-level graph API).
  void remove_node(const std::string& node_name);

  bool has_node(const std::string& node_name) const;
  Node& node(const std::string& node_name);
  const Node& node(const std::string& node_name) const;
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Nodes in topological (stored) order; validates that producers precede
  /// consumers and throws otherwise.
  std::vector<const Node*> topological_order() const;

  /// Parameter / constant storage. feed_tensor replaces (or creates) a
  /// stored tensor; fetch_tensor returns a reference.
  void feed_tensor(const std::string& name, Tensor value);
  Tensor& fetch_tensor(const std::string& name);
  const Tensor& fetch_tensor(const std::string& name) const;
  bool has_tensor(const std::string& name) const;

  /// Monotonic counter bumped whenever stored tensors may have mutated:
  /// every feed_tensor and every MUTABLE fetch_tensor (optimizers publish
  /// updated weights through exactly those paths; const reads don't bump).
  /// The PlanExecutor pre-packed weight cache compares versions to decide
  /// when packed panels are stale.
  std::uint64_t params_version() const { return params_version_; }

  /// Trainable parameter names (paper: network.get_params()).
  const std::vector<std::string>& parameters() const { return parameters_; }
  void mark_parameter(const std::string& name);

  /// Gradient naming convention: gradient of value `x` is stored under
  /// gradient_name(x) by the executor after backprop.
  static std::string gradient_name(const std::string& value) {
    return "grad::" + value;
  }
  /// (parameter, gradient) name pairs (paper: network.gradient()).
  std::vector<std::pair<std::string, std::string>> gradients() const;

  /// Graph inputs fed at runtime and their declared shapes.
  void declare_input(const std::string& name, Shape shape);
  const std::vector<std::string>& inputs() const { return inputs_; }
  const Shape& input_shape(const std::string& name) const;

  void declare_output(const std::string& name);
  const std::vector<std::string>& outputs() const { return outputs_; }

  /// Flips training/inference mode on stateful operators (Dropout,
  /// BatchNorm).
  void set_training(bool training);

  /// Sum of elements over all parameters.
  std::int64_t parameter_count() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::map<std::string, std::size_t> node_index_;
  TensorMap tensors_;
  std::vector<std::string> parameters_;
  std::vector<std::string> inputs_;
  std::map<std::string, Shape> input_shapes_;
  std::vector<std::string> outputs_;
  std::uint64_t params_version_ = 0;
};

/// Canonical gradient-readiness order of the trainable parameters during
/// backprop: a parameter's gradient is final once the backward walk has
/// visited ALL of its consumer nodes, i.e. after the consumer with the
/// smallest topological index (backprop walks nodes in reverse). Sorted by
/// descending min-consumer index — the order gradients finish during the
/// backward pass — with ties broken by declaration order and unconsumed
/// parameters (gradient is trivially zero) first, since they are "ready"
/// before the walk begins. Gradient bucketing (dist/dist_optimizer) and
/// the PlanExecutor's eager gradient publication both derive from this one
/// rule so bucket launch order is consistent everywhere.
std::vector<std::string> backward_ready_param_order(const Network& net);

}  // namespace d500
