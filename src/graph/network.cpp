#include "graph/network.hpp"

#include <algorithm>

namespace d500 {

void Network::add_node(std::string node_name, OperatorPtr op,
                       std::vector<std::string> inputs,
                       std::vector<std::string> outputs,
                       const std::string& op_type) {
  D500_CHECK_MSG(op != nullptr, "add_node: null operator");
  D500_CHECK_MSG(!node_index_.count(node_name),
                 "add_node: duplicate node '" << node_name << "'");
  D500_CHECK_MSG(inputs.size() == op->num_inputs(),
                 "add_node: '" << node_name << "' input arity mismatch");
  D500_CHECK_MSG(outputs.size() == op->num_outputs(),
                 "add_node: '" << node_name << "' output arity mismatch");
  Node n;
  n.name = std::move(node_name);
  n.op_type = op_type.empty() ? op->name() : op_type;
  n.op = std::move(op);
  n.inputs = std::move(inputs);
  n.outputs = std::move(outputs);
  node_index_[n.name] = nodes_.size();
  nodes_.push_back(std::move(n));
}

void Network::remove_node(const std::string& node_name) {
  auto it = node_index_.find(node_name);
  D500_CHECK_MSG(it != node_index_.end(),
                 "remove_node: no node '" << node_name << "'");
  nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(it->second));
  node_index_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    node_index_[nodes_[i].name] = i;
}

bool Network::has_node(const std::string& node_name) const {
  return node_index_.count(node_name) > 0;
}

Network::Node& Network::node(const std::string& node_name) {
  auto it = node_index_.find(node_name);
  D500_CHECK_MSG(it != node_index_.end(), "no node '" << node_name << "'");
  return nodes_[it->second];
}

const Network::Node& Network::node(const std::string& node_name) const {
  auto it = node_index_.find(node_name);
  D500_CHECK_MSG(it != node_index_.end(), "no node '" << node_name << "'");
  return nodes_[it->second];
}

std::vector<const Network::Node*> Network::topological_order() const {
  // Stored order must already be topological; verify producers precede
  // consumers relative to runtime-computed values.
  std::set<std::string> available;
  for (const auto& in : inputs_) available.insert(in);
  for (const auto& [name, _] : tensors_) available.insert(name);
  std::vector<const Node*> order;
  order.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    for (const auto& in : n.inputs)
      D500_CHECK_MSG(available.count(in),
                     "network '" << name_ << "': node '" << n.name
                     << "' consumes '" << in << "' before it is produced");
    for (const auto& out : n.outputs) available.insert(out);
    order.push_back(&n);
  }
  return order;
}

void Network::feed_tensor(const std::string& name, Tensor value) {
  ++params_version_;
  tensors_[name] = std::move(value);
}

Tensor& Network::fetch_tensor(const std::string& name) {
  auto it = tensors_.find(name);
  D500_CHECK_MSG(it != tensors_.end(), "fetch_tensor: no tensor '" << name << "'");
  // A mutable reference escapes: assume the caller writes (optimizers
  // fetch parameters exactly this way), so pre-packed weight panels keyed
  // on params_version() repack on the next run.
  ++params_version_;
  return it->second;
}

const Tensor& Network::fetch_tensor(const std::string& name) const {
  auto it = tensors_.find(name);
  D500_CHECK_MSG(it != tensors_.end(), "fetch_tensor: no tensor '" << name << "'");
  return it->second;
}

bool Network::has_tensor(const std::string& name) const {
  return tensors_.count(name) > 0;
}

void Network::mark_parameter(const std::string& name) {
  D500_CHECK_MSG(tensors_.count(name),
                 "mark_parameter: '" << name << "' is not a stored tensor");
  if (std::find(parameters_.begin(), parameters_.end(), name) ==
      parameters_.end())
    parameters_.push_back(name);
}

std::vector<std::pair<std::string, std::string>> Network::gradients() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(parameters_.size());
  for (const auto& p : parameters_) out.emplace_back(p, gradient_name(p));
  return out;
}

void Network::declare_input(const std::string& name, Shape shape) {
  if (std::find(inputs_.begin(), inputs_.end(), name) == inputs_.end())
    inputs_.push_back(name);
  input_shapes_[name] = std::move(shape);
}

const Shape& Network::input_shape(const std::string& name) const {
  auto it = input_shapes_.find(name);
  D500_CHECK_MSG(it != input_shapes_.end(),
                 "input_shape: no input '" << name << "'");
  return it->second;
}

void Network::declare_output(const std::string& name) {
  if (std::find(outputs_.begin(), outputs_.end(), name) == outputs_.end())
    outputs_.push_back(name);
}

void Network::set_training(bool training) {
  for (auto& n : nodes_) n.op->set_training_mode(training);
}

std::int64_t Network::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& p : parameters_) n += fetch_tensor(p).elements();
  return n;
}

std::vector<std::string> backward_ready_param_order(const Network& net) {
  const auto& nodes = net.nodes();
  const auto& params = net.parameters();
  constexpr std::size_t kUnconsumed = static_cast<std::size_t>(-1);
  std::map<std::string, std::size_t> min_consumer;
  for (const auto& p : params) min_consumer[p] = kUnconsumed;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& in : nodes[i].inputs) {
      auto it = min_consumer.find(in);
      if (it != min_consumer.end() && it->second == kUnconsumed)
        it->second = i;  // first hit is the min (ascending scan)
    }
  }
  // Indices into `params`, stable-sorted so declaration order breaks ties.
  std::vector<std::size_t> idx(params.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t ca = min_consumer[params[a]];
    const std::size_t cb = min_consumer[params[b]];
    if (ca == cb) return false;
    if (ca == kUnconsumed) return true;   // ready before the walk starts
    if (cb == kUnconsumed) return false;
    return ca > cb;  // visited earlier in the reverse walk
  });
  std::vector<std::string> order;
  order.reserve(params.size());
  for (std::size_t i : idx) order.push_back(params[i]);
  return order;
}

}  // namespace d500
