#include "graph/microbatch.hpp"

#include <algorithm>
#include <limits>

#include "graph/shape_inference.hpp"

namespace d500 {

std::size_t conv_workspace_bytes(const Shape& x_shape, std::int64_t filters,
                                 const Conv2DParams& p) {
  Conv2DOp op(p, ConvBackend::kIm2col);
  const Shape w{filters, x_shape[1], p.kernel_h, p.kernel_w};
  const Shape b{filters};
  return op.workspace_bytes({x_shape, w, b});
}

MicrobatchPlan solve_microbatch(std::int64_t batch, std::size_t memory_budget,
                                const std::vector<std::int64_t>& candidate_sizes,
                                const MicrobatchCostFn& cost) {
  MicrobatchPlan plan;
  D500_CHECK(batch > 0);

  // Feasible options only.
  std::vector<MicrobatchOption> options;
  for (std::int64_t s : candidate_sizes) {
    if (s <= 0 || s > batch) continue;
    MicrobatchOption opt = cost(s);
    opt.size = s;
    if (memory_budget == 0 || opt.memory_bytes <= memory_budget)
      options.push_back(opt);
  }
  if (options.empty()) return plan;  // infeasible

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(static_cast<std::size_t>(batch) + 1, kInf);
  std::vector<int> choice(static_cast<std::size_t>(batch) + 1, -1);
  dp[0] = 0.0;
  for (std::int64_t b = 1; b <= batch; ++b) {
    for (std::size_t k = 0; k < options.size(); ++k) {
      const std::int64_t s = options[k].size;
      if (s > b) continue;
      const double c = dp[static_cast<std::size_t>(b - s)] +
                       options[k].cost_seconds;
      if (c < dp[static_cast<std::size_t>(b)]) {
        dp[static_cast<std::size_t>(b)] = c;
        choice[static_cast<std::size_t>(b)] = static_cast<int>(k);
      }
    }
  }
  if (choice[static_cast<std::size_t>(batch)] < 0) return plan;  // no cover

  plan.feasible = true;
  plan.predicted_cost = dp[static_cast<std::size_t>(batch)];
  for (std::int64_t b = batch; b > 0;) {
    const auto& opt = options[static_cast<std::size_t>(
        choice[static_cast<std::size_t>(b)])];
    plan.sizes.push_back(opt.size);
    plan.backends.push_back(opt.backend);
    b -= opt.size;
  }
  // Deterministic order (largest chunks first, as produced it is already
  // grouped; sort for stable output).
  return plan;
}

Model MicrobatchTransform::apply(const Model& model) const {
  const auto shapes = infer_shapes(model);
  Model out = model;
  std::vector<ModelNode> rewritten;
  rewritten.reserve(out.nodes.size());
  int counter = 0;

  for (const ModelNode& node : out.nodes) {
    if (node.op_type != "Conv2D") {
      rewritten.push_back(node);
      continue;
    }
    const Shape& x = shapes.at(node.inputs[0]);
    const Shape& w = shapes.at(node.inputs[1]);
    Conv2DParams p;
    p.kernel_h = node.attrs.get_int("kernel_h", node.attrs.get_int("kernel", 3));
    p.kernel_w = node.attrs.get_int("kernel_w", node.attrs.get_int("kernel", 3));
    p.stride = node.attrs.get_int("stride", 1);
    p.pad = node.attrs.get_int("pad", 0);
    p.dilation = node.attrs.get_int("dilation", 1);

    const std::size_t ws = conv_workspace_bytes(x, w[0], p);
    if (budget_ == 0 || ws <= budget_) {
      rewritten.push_back(node);
      continue;
    }

    // Cost model: default is proportional (workspace bytes as proxy for
    // time), which makes the DP prefer the largest feasible chunk.
    MicrobatchCostFn cost = cost_;
    if (!cost) {
      const Shape base = x;
      const std::int64_t filters = w[0];
      const Conv2DParams params = p;
      cost = [base, filters, params](std::int64_t s) {
        Shape xs = base;
        xs[0] = s;
        MicrobatchOption opt;
        opt.size = s;
        opt.memory_bytes = conv_workspace_bytes(xs, filters, params);
        opt.cost_seconds = static_cast<double>(s);  // linear in samples
        opt.backend = ConvBackend::kIm2col;
        return opt;
      };
    }

    MicrobatchPlan plan = solve_microbatch(x[0], budget_, candidates_, cost);
    if (!plan.feasible)
      throw OutOfMemoryError("microbatch: no feasible split for node '" +
                             node.name + "' under budget " +
                             std::to_string(budget_));

    const std::string tag = "_mb" + std::to_string(counter++);
    // Split node.
    ModelNode split;
    split.name = node.name + tag + "_split";
    split.op_type = "Split";
    split.inputs = {node.inputs[0]};
    std::vector<std::int64_t> sizes = plan.sizes;
    split.attrs.set("sizes", sizes);
    for (std::size_t k = 0; k < plan.sizes.size(); ++k)
      split.outputs.push_back(node.outputs[0] + tag + "_in" +
                              std::to_string(k));
    rewritten.push_back(split);

    // Micro-convolutions (weights/bias shared).
    std::vector<std::string> conv_outs;
    for (std::size_t k = 0; k < plan.sizes.size(); ++k) {
      ModelNode conv;
      conv.name = node.name + tag + "_conv" + std::to_string(k);
      conv.op_type = "Conv2D";
      conv.inputs = {split.outputs[k], node.inputs[1], node.inputs[2]};
      conv.outputs = {node.outputs[0] + tag + "_out" + std::to_string(k)};
      conv.attrs = node.attrs;
      conv.attrs.set("backend", std::string(conv_backend_name(plan.backends[k])));
      conv_outs.push_back(conv.outputs[0]);
      rewritten.push_back(std::move(conv));
    }

    // Concat node restoring the original output edge.
    ModelNode concat;
    concat.name = node.name + tag + "_concat";
    concat.op_type = "Concat";
    concat.inputs = conv_outs;
    concat.outputs = {node.outputs[0]};
    concat.attrs.set("num_inputs", static_cast<std::int64_t>(conv_outs.size()));
    rewritten.push_back(std::move(concat));
  }

  out.nodes = std::move(rewritten);
  out.validate();
  return out;
}

}  // namespace d500
