// Graph transformations (paper §IV-D: "researchers can build their own
// graph transformations to optimize between operators").
//
// Transforms are Model -> Model rewrites, applied before network
// construction so they are framework-independent — the property the
// paper's micro-batching case study (§V-C) relies on. Operator fusion and
// dead-code elimination moved to the instantiated-graph pass pipeline in
// graph/passes/ (they need operator identity, not just op_type strings);
// only structural Model rewrites (micro-batching) remain transforms.
#pragma once

#include "graph/model.hpp"

namespace d500 {

class GraphTransform {
 public:
  virtual ~GraphTransform() = default;
  virtual std::string name() const = 0;
  virtual Model apply(const Model& model) const = 0;
};

}  // namespace d500
