// Graph transformations (paper §IV-D: "researchers can build their own
// graph transformations to optimize between operators").
//
// Transforms are Model -> Model rewrites, applied before network
// construction so they are framework-independent — the property the
// paper's micro-batching case study (§V-C) relies on.
#pragma once

#include "graph/model.hpp"

namespace d500 {

class GraphTransform {
 public:
  virtual ~GraphTransform() = default;
  virtual std::string name() const = 0;
  virtual Model apply(const Model& model) const = 0;
};

/// Fuses BiasAdd -> ReLU chains (single consumer) into FusedBiasRelu: the
/// operation-fusion optimization the paper attributes to Caffe2 kernels
/// (Use Case 1). Returns the number of fusions via last_fused().
class FuseBiasReluTransform : public GraphTransform {
 public:
  std::string name() const override { return "fuse-bias-relu"; }
  Model apply(const Model& model) const override;
};

/// Removes nodes none of whose outputs are consumed or exported.
class DeadNodeElimination : public GraphTransform {
 public:
  std::string name() const override { return "dead-node-elimination"; }
  Model apply(const Model& model) const override;
};

}  // namespace d500
