#include "dist/distsim.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace d500 {

const char* scheme_name(DistScheme s) {
  switch (s) {
    case DistScheme::kCDSGD: return "CDSGD";
    case DistScheme::kHorovod: return "Horovod";
    case DistScheme::kTFPS: return "TF-PS";
    case DistScheme::kSparCML: return "SparCML";
    case DistScheme::kRefDsgd: return "REF-dsgd";
    case DistScheme::kRefPssgd: return "REF-pssgd";
    case DistScheme::kRefAsgd: return "REF-asgd";
    case DistScheme::kRefDpsgd: return "REF-dpsgd";
    case DistScheme::kRefMavg: return "REF-mavg";
  }
  return "?";
}

namespace {

/// Reference-implementation (Python-path) overhead: per-tensor interpreter
/// calls plus staging conversions to/from NumPy in both directions.
double ref_overhead(const ScalingConfig& cfg) {
  return cfg.tensors * cfg.py_call_overhead +
         2.0 * cfg.param_bytes / cfg.py_conversion_bw;
}

}  // namespace

SchemePoint simulate_point(DistScheme scheme, const NetParams& net,
                           const ScalingConfig& cfg, int nodes,
                           std::int64_t global_batch, bool weak_scaling) {
  D500_CHECK(nodes >= 1);
  SchemePoint pt;
  pt.nodes = nodes;
  const double per_node_batch =
      weak_scaling ? static_cast<double>(global_batch) / nodes
                   : static_cast<double>(global_batch) / nodes;
  // (identical expression; in weak scaling the caller passes
  //  global_batch = per_node_batch * nodes)
  const double compute = per_node_batch * cfg.compute_seconds_per_sample;
  const double B = cfg.param_bytes;

  double comm = 0.0;
  switch (scheme) {
    case DistScheme::kCDSGD:
      // One ring allreduce over the full gradient, direct pointers; a
      // GPU->host staging copy per direction (the paper notes reference
      // implementations incur this; CDSGD uses direct pointers so only
      // the wire time counts).
      comm = t_ring_allreduce(net, nodes, B);
      break;
    case DistScheme::kHorovod:
      // Fused-buffer ring allreduce plus a small coordination latency per
      // fusion cycle.
      comm = t_ring_allreduce(net, nodes, B) + 5.0 * net.alpha;
      break;
    case DistScheme::kTFPS: {
      if (nodes >= cfg.tfps_crash_nodes) {
        pt.failed = true;
        pt.failure_reason = "application crash (paper §V-E weak scaling)";
      }
      comm = t_sharded_ps(net, nodes, B);
      break;
    }
    case DistScheme::kSparCML: {
      const auto sp =
          t_sparse_allreduce(net, nodes, B, cfg.sparse_density);
      comm = sp.seconds;
      break;
    }
    case DistScheme::kRefDsgd:
      comm = t_ring_allreduce(net, nodes, B) + ref_overhead(cfg);
      break;
    case DistScheme::kRefPssgd:
      comm = t_central_ps(net, nodes, B) + ref_overhead(cfg);
      break;
    case DistScheme::kRefAsgd: {
      // Asynchronous: no barrier, but the central server serializes all
      // pushes; iteration time is governed by the slower of compute and
      // server service (workers queue up).
      const double iter =
          t_async_ps_iteration(net, nodes, B, compute) + ref_overhead(cfg);
      pt.comm_seconds = iter - compute > 0 ? iter - compute : 0.0;
      pt.iteration_seconds = iter;
      break;
    }
    case DistScheme::kRefDpsgd:
      comm = t_neighbor_exchange(net, B) + ref_overhead(cfg);
      break;
    case DistScheme::kRefMavg:
      // Parameter allreduce instead of gradient allreduce — same volume,
      // slightly cheaper because the update is local (no second pass).
      comm = t_ring_allreduce(net, nodes, B) + ref_overhead(cfg) * 0.9;
      break;
  }

  if (scheme != DistScheme::kRefAsgd) {
    pt.comm_seconds = comm;
    pt.iteration_seconds = compute + comm;
  }

  // Failure modes reproduced as documented outcomes (not timing points).
  if (scheme == DistScheme::kHorovod && nodes >= cfg.horovod_unstable_nodes) {
    pt.failed = true;
    pt.failure_reason =
        "exploding loss: incorrect gradient accumulation (paper §V-E)";
  }

  pt.throughput =
      pt.failed ? 0.0
                : static_cast<double>(global_batch) / pt.iteration_seconds;

  // App-level communicated bytes per node per iteration (mpiP-style).
  switch (scheme) {
    case DistScheme::kCDSGD:
    case DistScheme::kHorovod:
    case DistScheme::kRefDsgd:
    case DistScheme::kRefMavg:
      pt.comm_gbytes_per_node = B / 1e9;
      break;
    case DistScheme::kRefPssgd:
    case DistScheme::kTFPS:
    case DistScheme::kRefDpsgd:
      pt.comm_gbytes_per_node = 2.0 * B / 1e9;
      break;
    case DistScheme::kRefAsgd:
      // Eager-propagation ASGD: every worker push makes the server unicast
      // fresh parameters to all workers (no tree, as the paper notes ASGD
      // "does not use broadcast/gather"), so per-node volume grows
      // linearly with the node count — the effect behind the caption's
      // 30x ASGD volume.
      pt.comm_gbytes_per_node = B * nodes / 1e9;
      break;
    case DistScheme::kSparCML: {
      const auto sp = t_sparse_allreduce(net, nodes, B, cfg.sparse_density);
      pt.comm_gbytes_per_node = sp.bytes_per_node / 1e9;
      break;
    }
  }
  return pt;
}

std::vector<SchemePoint> simulate_scaling(DistScheme scheme,
                                          const NetParams& net,
                                          const ScalingConfig& cfg,
                                          const std::vector<int>& node_counts,
                                          std::int64_t batch,
                                          bool weak_scaling) {
  std::vector<SchemePoint> out;
  out.reserve(node_counts.size());
  for (int n : node_counts) {
    const std::int64_t global =
        weak_scaling ? batch * static_cast<std::int64_t>(n) : batch;
    out.push_back(simulate_point(scheme, net, cfg, n, global, weak_scaling));
  }
  return out;
}

}  // namespace d500
