// Pipeline parallelism (paper §IV-F Interoperability: "modifying a DNN
// graph to create pipeline parallelism across processes is impossible
// automatically in any of the frameworks, but can straightforwardly be
// done in Deep500").
//
// split_model_stages partitions a stored Model into contiguous stages at
// the graph level: each stage becomes a self-contained Model whose inputs
// are the cross-stage activations (with inferred shapes) and whose
// initializers are the parameters its nodes consume. PipelineRunner then
// executes the stages on consecutive SimMPI ranks, streaming micro-batches
// through the pipeline (fill/drain schedule) — activations travel as
// messages, and the final outputs are bit-identical to single-process
// execution.
#pragma once

#include "dist/simmpi.hpp"
#include "graph/executor.hpp"
#include "graph/model.hpp"

namespace d500 {

/// One pipeline stage: a runnable model plus its cross-stage wiring.
struct PipelineStage {
  Model model;
  /// Values received from the previous stage (in model.graph_inputs order,
  /// excluding original graph inputs, which are fed by the driver).
  std::vector<std::string> recv_values;
  /// Values sent to the next stage (subset of model.graph_outputs).
  std::vector<std::string> send_values;
  /// Original graph inputs this stage still needs from the driver (e.g.
  /// "data" for stage 0, "labels" for the loss-carrying last stage).
  std::vector<std::string> driver_inputs;
};

/// Splits `model` into `stages` contiguous stages with balanced node
/// counts. Throws when stages exceeds the node count. The concatenation of
/// stages is semantically identical to the original model.
std::vector<PipelineStage> split_model_stages(const Model& model, int stages);

/// Executes the staged pipeline on `stages.size()` SimMPI ranks. Feeds are
/// per-micro-batch driver inputs (each TensorMap holds every original
/// graph input for one micro-batch). Returns the final stage's outputs per
/// micro-batch, in order. `make_executor` builds each stage's executor
/// (reference or any framework engine).
std::vector<TensorMap> run_pipeline(
    SimMpi& world, const std::vector<PipelineStage>& stages,
    const std::vector<TensorMap>& microbatch_feeds,
    const std::function<std::unique_ptr<GraphExecutor>(const Model&)>&
        make_executor);

}  // namespace d500
