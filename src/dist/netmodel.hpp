// Analytic network cost model (alpha-beta) for the scaling experiments
// (paper Fig. 12). See DESIGN.md substitutions: the distributed *timing*
// on 8-256 nodes cannot come from one CPU core's wall clock, so iteration
// times combine measured per-node compute with these standard collective
// cost formulas; communication *volume* is measured exactly by SimMPI.
//
// Defaults approximate Piz Daint's Aries interconnect and a P100-class
// compute rate for ResNet-50, calibrated so absolute throughputs land in
// the paper's range; the claims under test are the *shapes* (ranking,
// crossover, scaling behaviour), which are robust to the constants.
#pragma once

#include <cstdint>
#include <string>

namespace d500 {

struct NetParams {
  double alpha = 1.8e-6;        // per-message latency (s)
  /// Effective per-byte time for DL gradient traffic. Far below the Aries
  /// link rate: this is end-to-end gradient bandwidth including GPU->host
  /// staging, matching the paper's observed allreduce times (~0.8 GB/s
  /// effective for 100 MB gradients).
  double beta = 1.2e-9;
  double gamma = 1.0 / 8.0e9;   // per-byte local reduction time (s/B)
  double server_beta = 1.2e-9;  // parameter-server NIC (s/B)
};

/// Ring allreduce: 2(n-1) messages, 2B(n-1)/n bytes on the wire per node.
double t_ring_allreduce(const NetParams& p, int nodes, double bytes);

/// Recursive-doubling allreduce: log2(n) rounds of full-vector exchange.
double t_rd_allreduce(const NetParams& p, int nodes, double bytes);

/// Binomial-tree broadcast / reduce.
double t_bcast(const NetParams& p, int nodes, double bytes);
double t_reduce(const NetParams& p, int nodes, double bytes);

/// Central parameter server round: n workers push B bytes (serialized at
/// the server's NIC — incast) and receive B bytes back.
double t_central_ps(const NetParams& p, int nodes, double bytes);

/// Sharded parameter server (one shard per node): reduce+broadcast of
/// B/n-byte shards, n concurrent roots.
double t_sharded_ps(const NetParams& p, int nodes, double bytes);

/// Asynchronous PS: the server applies pushes serially; with n workers
/// issuing a push of B bytes per iteration the server becomes the
/// bottleneck once n * service_time exceeds the worker compute time.
/// Returns the effective per-iteration time given worker compute time.
double t_async_ps_iteration(const NetParams& p, int nodes, double bytes,
                            double worker_compute_seconds);

/// Neighbor exchange (DPSGD): two point-to-point messages of B bytes.
double t_neighbor_exchange(const NetParams& p, double bytes);

/// SparCML sparse allreduce: log2(n) rounds; round k carries
/// min(1, density * 2^k) of the dense bytes (indices double the payload),
/// plus the dense->sparse filtering pass, plus dense rounds after the
/// switch threshold. Mirrors dist/sparcml.cpp's algorithm.
struct SparseAllreduceTime {
  double seconds = 0.0;
  double bytes_per_node = 0.0;  // app-level bytes this node sends
};
SparseAllreduceTime t_sparse_allreduce(const NetParams& p, int nodes,
                                       double dense_bytes, double density,
                                       double switch_threshold = 0.35,
                                       double filter_rate = 1.0 / 2.5e9);

}  // namespace d500
