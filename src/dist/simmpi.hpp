// SimMPI: an in-process message-passing substrate standing in for MPI
// (see DESIGN.md substitutions — the container has no MPI and one core).
//
// Ranks execute as threads; point-to-point messages travel through
// per-(src,dst,tag) queues with real data movement, and the collectives
// are implemented with the standard algorithms (binomial-tree broadcast
// and reduce, ring and recursive-doubling allreduce, ring allgather) on
// top of send/recv, so communication VOLUME is exact — the quantity the
// paper's CommunicationVolume metric reports (Fig. 12 caption) — even
// though wall-clock time on one core is not meaningful (timing comes from
// dist/netmodel.hpp instead).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "dist/fault.hpp"

namespace d500 {

class Communicator;
class AllreduceRequest;

/// A world of `size` ranks. run() launches one thread per rank and joins.
class SimMpi {
 public:
  /// The world attaches a FaultInjector built from the D500_FAULTS env
  /// schedule (the all-no-op disabled plan when unset); every send routes
  /// through it unconditionally.
  explicit SimMpi(int size);

  int size() const { return size_; }

  /// Replaces the injector with a programmatic schedule (tests/benches).
  /// Call before run(); per-rank event counters restart from zero.
  void set_fault_plan(FaultPlan plan);
  FaultInjector& fault_injector() { return *injector_; }

  /// Drops every queued point-to-point message and forgets in-flight
  /// nonblocking collectives. Recovery support: after a RankFailure aborts
  /// a collective mid-flight, the orphaned partial messages must not
  /// cross-match a retried attempt. Only call between run() invocations.
  void clear_mailboxes();

  /// Runs `fn(comm)` on every rank concurrently. Exceptions thrown by any
  /// rank are captured and rethrown (first by rank order) after join.
  void run(const std::function<void(Communicator&)>& fn);

  /// Total bytes sent by each rank across all run() calls.
  std::uint64_t bytes_sent(int rank) const;
  std::uint64_t total_bytes_sent() const;
  /// Messages sent per rank.
  std::uint64_t messages_sent(int rank) const;
  void reset_counters();

  /// Test-only hook intercepting nonblocking-collective completion tasks.
  /// The default (empty) scheduler enqueues each completion onto the shared
  /// thread pool; a test can capture the closures instead and run them in
  /// an adversarial order — results must not depend on it. Completions left
  /// unexecuted deadlock wait(), exactly like a lost MPI message would.
  void set_completion_scheduler(std::function<void(std::function<void()>)> s);

 private:
  friend class Communicator;
  friend class AllreduceRequest;
  friend class EagerAllreduce;  // analytic wire charge for board rounds

  /// Shared state of one in-flight nonblocking allreduce: every rank's
  /// buffer span, registered on arrival. The last arrival schedules a
  /// single completion task that reduces with the blocking ring algorithm's
  /// exact arithmetic and fans the result out to every registered span
  /// (buffers must stay valid until wait(), as in MPI).
  struct CollectiveOp {
    int expected = 0;
    int arrived = 0;
    std::size_t len = 0;                 // element count (all ranks equal)
    std::vector<std::span<float>> bufs;  // indexed by rank
    std::atomic<bool> done{false};
  };

  struct Message {
    std::vector<float> data;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues;  // (src, tag)
  };

  /// Marks the world revoked (a rank died mid-run): every blocked take /
  /// take_any / barrier wakes and throws RankFailure, so one rank's
  /// scheduled abort cannot deadlock its peers in a blocking collective —
  /// the ULFM MPI_Comm_revoke model. run() resets the flag on entry.
  void revoke();

  void post(int src, int dst, int tag, std::vector<float> data);
  Message take(int src, int dst, int tag);
  /// Wildcard receive: first queued message for `dst` on `tag` from any
  /// source, lowest source rank first when several wait. Blocks like take.
  std::pair<int, Message> take_any(int dst, int tag);
  /// Wire/message accounting for paths that do not move real point-to-point
  /// messages (nonblocking collectives, eager boards) but must charge what
  /// the equivalent algorithm would send.
  void charge(int rank, std::uint64_t bytes, std::uint64_t msgs);

  /// Rank `rank` joins nonblocking collective (tag, seq); returns the
  /// shared op. The last arrival schedules the completion task.
  std::shared_ptr<CollectiveOp> join_collective(int rank, int tag,
                                                std::uint64_t seq,
                                                std::span<float> data);
  /// Ring-equivalent reduction: for each ring chunk c, fold the ranks'
  /// contributions in cyclic order starting at rank c — the exact
  /// summation order (IEEE addition is commutative) of
  /// Communicator::allreduce_sum_ring — then fan the chunk out to every
  /// buffer. Bit-identical to the blocking path by construction.
  static void complete_allreduce(CollectiveOp& op);

  int size_;
  std::vector<Mailbox> mailboxes_;  // one per destination rank

  // Nonblocking collectives in flight, keyed by (tag, per-tag sequence).
  // Entries are erased by the last arrival (waiters hold shared_ptrs).
  std::mutex coll_mu_;
  std::map<std::pair<int, std::uint64_t>, std::shared_ptr<CollectiveOp>>
      pending_colls_;
  std::function<void(std::function<void()>)> completion_scheduler_;

  // Barrier state (central counter, generation-based).
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  std::atomic<bool> revoked_{false};

  mutable std::mutex stats_mu_;
  std::vector<std::uint64_t> bytes_sent_;
  std::vector<std::uint64_t> msgs_sent_;

  std::unique_ptr<FaultInjector> injector_;
};

/// Per-rank handle (only valid inside SimMpi::run).
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return world_->size(); }

  /// Point-to-point. Data is copied (value semantics, like MPI buffers).
  void send(int dst, std::span<const float> data, int tag = 0);
  void recv(int src, std::span<float> out, int tag = 0);

  /// Wildcard receive (MPI_ANY_SOURCE): blocks for the first message on
  /// `tag` from any source; returns (source rank, payload). The
  /// parameter-server optimizer's service loop is built on this.
  std::pair<int, std::vector<float>> recv_any(int tag = 0);

  void barrier();

  /// Binomial-tree broadcast from root.
  void bcast(std::span<float> data, int root = 0);

  /// Binomial-tree reduction (sum) to root.
  void reduce_sum(std::span<float> data, int root = 0);

  /// Ring allreduce (reduce-scatter + allgather): the bandwidth-optimal
  /// algorithm, 2*(n-1)/n * bytes per rank.
  void allreduce_sum_ring(std::span<float> data);

  /// Recursive-doubling allreduce: log2(n) rounds of full-vector exchange
  /// (latency-optimal for small vectors). Non-power-of-two worlds fold the
  /// excess ranks first.
  void allreduce_sum_rd(std::span<float> data);

  /// Ring allgather: each rank contributes `chunk` elements; `out` is
  /// size*chunk, rank r's contribution at offset r*chunk.
  void allgather(std::span<const float> chunk, std::span<float> out);

  /// Nonblocking allreduce (sum). Returns immediately with a handle; the
  /// reduction runs as a single task on the shared thread pool once every
  /// rank has joined, so communication proceeds while the caller keeps
  /// computing. `data` must stay valid and untouched until wait()/test()
  /// reports completion, and holds the full sum afterwards. Matching is by
  /// (tag, per-tag call sequence): every rank's i-th iallreduce on a tag
  /// joins the same collective, so launch order across tags may differ
  /// between ranks. Results are bit-identical to allreduce_sum_ring on the
  /// same data, and byte/message accounting charges exactly what the
  /// blocking ring algorithm would send.
  AllreduceRequest iallreduce_sum(std::span<float> data, int tag = 0);

  /// Blocks until `req` completes. While blocked, the calling thread works
  /// the shared pool queue (it may execute other ranks' completion tasks —
  /// that is the single-core overlap story, and it also means wait() makes
  /// progress even on a pool with no workers). Idempotent: a second wait
  /// on the same handle returns immediately.
  void wait(AllreduceRequest& req);

  /// Nonblocking completion poll.
  bool test(const AllreduceRequest& req) const;

 private:
  friend class SimMpi;
  friend class EagerAllreduce;
  Communicator(SimMpi* world, int rank) : world_(world), rank_(rank) {}

  SimMpi* world_;
  int rank_;
  std::map<int, std::uint64_t> coll_seq_;  // per-tag iallreduce call count
};

/// Handle for a nonblocking collective (default-constructed = empty, and
/// wait() on it is a no-op). Movable, not copyable: exactly one owner
/// waits, like an MPI_Request.
class AllreduceRequest {
 public:
  AllreduceRequest() = default;
  AllreduceRequest(AllreduceRequest&&) = default;
  AllreduceRequest& operator=(AllreduceRequest&&) = default;
  AllreduceRequest(const AllreduceRequest&) = delete;
  AllreduceRequest& operator=(const AllreduceRequest&) = delete;

  bool valid() const { return op_ != nullptr; }

 private:
  friend class Communicator;
  std::shared_ptr<SimMpi::CollectiveOp> op_;
};

}  // namespace d500
