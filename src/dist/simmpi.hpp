// SimMPI: an in-process message-passing substrate standing in for MPI
// (see DESIGN.md substitutions — the container has no MPI and one core).
//
// Ranks execute as threads; point-to-point messages travel through
// per-(src,dst,tag) queues with real data movement, and the collectives
// are implemented with the standard algorithms (binomial-tree broadcast
// and reduce, ring and recursive-doubling allreduce, ring allgather) on
// top of send/recv, so communication VOLUME is exact — the quantity the
// paper's CommunicationVolume metric reports (Fig. 12 caption) — even
// though wall-clock time on one core is not meaningful (timing comes from
// dist/netmodel.hpp instead).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace d500 {

class Communicator;

/// A world of `size` ranks. run() launches one thread per rank and joins.
class SimMpi {
 public:
  explicit SimMpi(int size);

  int size() const { return size_; }

  /// Runs `fn(comm)` on every rank concurrently. Exceptions thrown by any
  /// rank are captured and rethrown (first by rank order) after join.
  void run(const std::function<void(Communicator&)>& fn);

  /// Total bytes sent by each rank across all run() calls.
  std::uint64_t bytes_sent(int rank) const;
  std::uint64_t total_bytes_sent() const;
  /// Messages sent per rank.
  std::uint64_t messages_sent(int rank) const;
  void reset_counters();

 private:
  friend class Communicator;

  struct Message {
    std::vector<float> data;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Message>> queues;  // (src, tag)
  };

  void post(int src, int dst, int tag, std::vector<float> data);
  Message take(int src, int dst, int tag);

  int size_;
  std::vector<Mailbox> mailboxes_;  // one per destination rank

  // Barrier state (central counter, generation-based).
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  mutable std::mutex stats_mu_;
  std::vector<std::uint64_t> bytes_sent_;
  std::vector<std::uint64_t> msgs_sent_;
};

/// Per-rank handle (only valid inside SimMpi::run).
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return world_->size(); }

  /// Point-to-point. Data is copied (value semantics, like MPI buffers).
  void send(int dst, std::span<const float> data, int tag = 0);
  void recv(int src, std::span<float> out, int tag = 0);

  void barrier();

  /// Binomial-tree broadcast from root.
  void bcast(std::span<float> data, int root = 0);

  /// Binomial-tree reduction (sum) to root.
  void reduce_sum(std::span<float> data, int root = 0);

  /// Ring allreduce (reduce-scatter + allgather): the bandwidth-optimal
  /// algorithm, 2*(n-1)/n * bytes per rank.
  void allreduce_sum_ring(std::span<float> data);

  /// Recursive-doubling allreduce: log2(n) rounds of full-vector exchange
  /// (latency-optimal for small vectors). Non-power-of-two worlds fold the
  /// excess ranks first.
  void allreduce_sum_rd(std::span<float> data);

  /// Ring allgather: each rank contributes `chunk` elements; `out` is
  /// size*chunk, rank r's contribution at offset r*chunk.
  void allgather(std::span<const float> chunk, std::span<float> out);

 private:
  friend class SimMpi;
  Communicator(SimMpi* world, int rank) : world_(world), rank_(rank) {}

  SimMpi* world_;
  int rank_;
};

}  // namespace d500
