// Level 3 distributed optimizers (paper §IV-F).
//
// Every variant wraps a Level 2 ThreeStepOptimizer and distributes it over
// a SimMPI communicator, exactly as the paper's MPI-based reference
// optimizers wrap update rules (Listing 9 is ConsistentDecentralized).
// Variants (paper Fig. 5 + §V-E):
//   ConsistentDecentralized  — DSGD: gradient allreduce, synchronous.
//                              Options select ring vs. recursive-doubling,
//                              per-tensor vs. fused-buffer (HorovodLike),
//                              and a staging-copy mode that mimics the
//                              Python reference path's NumPy conversions
//                              (REF-dsgd) vs. the direct-pointer custom
//                              C++ operator (CDSGD).
//   ConsistentCentralized    — PSSGD: gradients reduced to a parameter
//                              server, parameters broadcast back.
//   ShardedParameterServer   — TF-PS-like: parameters sharded over ranks.
//   InconsistentCentralized  — ASGD: HOGWILD-style asynchronous pushes and
//                              pulls against a shared parameter store.
//   StaleSynchronous         — ASGD with a bounded staleness window.
//   ModelAveraging           — MAVG: local steps + parameter allreduce.
//   NeighborDecentralized    — DPSGD: parameter averaging with ring
//                              neighbors only.
//
// Byte accounting is two-level: app_bytes() counts MPI-call buffer sizes
// at the caller (what mpiP reports, the paper's Fig. 12 caption numbers);
// SimMpi's counters hold the wire-level traffic of the actual collective
// algorithms.
#pragma once

#include <atomic>
#include <memory>

#include "dist/eager.hpp"
#include "dist/simmpi.hpp"
#include "train/optimizer.hpp"

namespace d500 {

class DistributedOptimizer : public Optimizer {
 public:
  DistributedOptimizer(std::unique_ptr<ThreeStepOptimizer> base,
                       Communicator& comm);

  /// mpiP-style per-node communication volume: buffer bytes per MPI call.
  std::uint64_t app_bytes() const { return app_bytes_; }
  /// Number of communication calls issued by this rank.
  std::uint64_t comm_calls() const { return comm_calls_; }

 protected:
  /// Runs the three-step structure around a caller-supplied gradient hook.
  TensorMap step_with_gradients(
      const TensorMap& feeds,
      const std::function<void()>& process_gradients);

  void count(std::uint64_t bytes) {
    app_bytes_ += bytes;
    ++comm_calls_;
  }

  std::unique_ptr<ThreeStepOptimizer> base_;
  Communicator& comm_;
  std::uint64_t app_bytes_ = 0;
  std::uint64_t comm_calls_ = 0;
};

enum class AllreduceAlgo { kRing, kRecursiveDoubling };

struct DsgdOptions {
  AllreduceAlgo algo = AllreduceAlgo::kRing;
  bool fuse_buffers = false;    // Horovod-style tensor fusion
  bool staging_copies = false;  // Python-reference NumPy-conversion path
};

/// Paper Listing 9.
class ConsistentDecentralized : public DistributedOptimizer {
 public:
  ConsistentDecentralized(std::unique_ptr<ThreeStepOptimizer> base,
                          Communicator& comm, DsgdOptions options = {});
  std::string name() const override;
  TensorMap train(const TensorMap& feeds) override;

 private:
  DsgdOptions options_;
  std::vector<float> fusion_buffer_;
  std::vector<float> staging_;
};

/// Horovod-like = DSGD with fused buffers (convenience factory).
std::unique_ptr<ConsistentDecentralized> make_horovod_like(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm);

/// One size-capped group of parameter gradients communicated as a unit.
/// Parameters appear in canonical backward_ready_param_order, so a bucket
/// fills up exactly as backprop retires its members.
struct GradientBucket {
  std::vector<std::string> params;
  std::vector<std::size_t> offsets;  // element offset of each param
  std::size_t elements = 0;
};

/// Greedy fill in backward_ready_param_order: a new bucket opens when
/// adding the next gradient would exceed `cap_bytes` (a bucket always
/// holds at least one tensor, so a cap below the largest tensor
/// degenerates to one bucket per tensor — never a split tensor).
std::vector<GradientBucket> build_gradient_buckets(const Network& net,
                                                   std::size_t cap_bytes);

struct BucketOptions {
  std::size_t cap_bytes = 0;  // 0 → D500_BUCKET_KB env (default 1 MiB)
  int overlap = -1;           // -1 → D500_OVERLAP env; 0/1 force off/on
  int tag_base = 900;         // per-bucket iallreduce tag namespace
};

/// DSGD with bucketed gradient allreduce and optional communication/
/// compute overlap. Gradients are grouped into size-capped buckets in the
/// order backprop finishes them; with overlap on (and a PlanExecutor
/// underneath) each bucket's nonblocking allreduce launches from the
/// executor's grad-ready hook the moment the bucket's last gradient is
/// published — while the remaining backward ops still run — and is drained
/// after backprop. With overlap off the same buckets go through blocking
/// ring allreduces after backprop. The two modes are bit-identical: the
/// nonblocking completion reduces with the ring algorithm's exact
/// summation order, the bucket layouts match, and the scale/update code is
/// shared. Executors without the grad-ready hook fall back to the blocking
/// path (still bucketed).
class BucketedDecentralized : public DistributedOptimizer {
 public:
  BucketedDecentralized(std::unique_ptr<ThreeStepOptimizer> base,
                        Communicator& comm, BucketOptions options = {});
  std::string name() const override;
  TensorMap train(const TensorMap& feeds) override;

  /// Bucket partition in launch order (built on first train()).
  const std::vector<GradientBucket>& buckets() const { return buckets_; }
  bool overlap_enabled() const { return overlap_; }
  /// Buckets launched via the grad-ready hook across all steps so far.
  std::uint64_t hook_launches() const { return hook_launches_; }

 private:
  void ensure_buckets();

  BucketOptions options_;
  bool overlap_ = false;
  std::vector<GradientBucket> buckets_;
  std::vector<std::vector<float>> bucket_bufs_;
  std::vector<int> bucket_pending_;
  std::vector<AllreduceRequest> bucket_reqs_;
  std::map<std::string, std::pair<std::size_t, std::size_t>>
      param_site_;  // param -> (bucket index, element offset)
  std::uint64_t hook_launches_ = 0;
  std::uint64_t overlap_bytes_ = 0;
};

/// PSSGD: rank 0 is the parameter server (also a worker, as in the paper's
/// reference implementation).
class ConsistentCentralized : public DistributedOptimizer {
 public:
  ConsistentCentralized(std::unique_ptr<ThreeStepOptimizer> base,
                        Communicator& comm);
  std::string name() const override { return "PSSGD"; }
  TensorMap train(const TensorMap& feeds) override;
};

/// TF-PS-like: parameter tensors sharded round-robin across all ranks;
/// each shard owner reduces, updates, and broadcasts its shard.
class ShardedParameterServer : public DistributedOptimizer {
 public:
  ShardedParameterServer(std::unique_ptr<ThreeStepOptimizer> base,
                         Communicator& comm);
  std::string name() const override { return "TF-PS"; }
  TensorMap train(const TensorMap& feeds) override;
};

/// Shared in-memory parameter store for the asynchronous variants (plays
/// the parameter-server process; access is serialized, which is exactly
/// the queueing behaviour the paper observes hurting ASGD at scale).
class ParameterStore {
 public:
  explicit ParameterStore(const Network& net);

  /// Copies current parameters into the network (a "pull").
  std::uint64_t pull_into(Network& net);
  /// Applies gradients with the given scale via SGD (a "push").
  std::uint64_t push_gradients(Network& net, double lr);

  /// Bounded-staleness support.
  void register_worker(int rank, int world);
  void advance(int rank);
  void wait_for_staleness(int rank, std::int64_t bound);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Tensor> params_;
  std::vector<std::int64_t> steps_;
};

/// ASGD (HOGWILD-style): pull, compute, push — no synchronization.
class InconsistentCentralized : public DistributedOptimizer {
 public:
  InconsistentCentralized(std::unique_ptr<ThreeStepOptimizer> base,
                          Communicator& comm, ParameterStore& store,
                          double lr);
  std::string name() const override { return "ASGD"; }
  TensorMap train(const TensorMap& feeds) override;

 private:
  ParameterStore& store_;
  double lr_;
};

/// Stale-synchronous: ASGD with max staleness `bound`.
class StaleSynchronous : public DistributedOptimizer {
 public:
  StaleSynchronous(std::unique_ptr<ThreeStepOptimizer> base,
                   Communicator& comm, ParameterStore& store, double lr,
                   std::int64_t bound);
  std::string name() const override { return "SSP"; }
  TensorMap train(const TensorMap& feeds) override;

 private:
  ParameterStore& store_;
  double lr_;
  std::int64_t bound_;
};

/// Eager DSGD: gradient averaging through an EagerAllreduce board, so a
/// scheduled straggler's contribution is substituted with its most recent
/// on-time gradient instead of being waited for (staleness bounded by the
/// board; see dist/eager.hpp). All ranks consume the identical substituted
/// sum, so parameters stay replicated and the run is bit-reproducible for
/// a given (fault seed, bound).
class EagerDecentralized : public DistributedOptimizer {
 public:
  EagerDecentralized(std::unique_ptr<ThreeStepOptimizer> base,
                     Communicator& comm, EagerAllreduce& board);
  std::string name() const override { return "Eager-DSGD"; }
  TensorMap train(const TensorMap& feeds) override;

 private:
  EagerAllreduce& board_;
  std::vector<float> fusion_buffer_;
};

/// Wire protocol of the bounded-staleness parameter server: one control
/// tag carries [opcode, step, payload...] worker->server; parameter
/// replies come back on the data tag.
inline constexpr int kPsCtrlTag = 700;
inline constexpr int kPsDataTag = 701;
inline constexpr float kPsOpPull = 0.0f;
inline constexpr float kPsOpPush = 1.0f;
inline constexpr float kPsOpDone = 2.0f;

/// Counters of one parameter-server service run.
struct PsStats {
  /// Gradient pushes applied per rank (index 0 — the server — stays 0).
  std::vector<std::int64_t> applied;
  /// Largest (worker step - slowest worker's applied pushes) served.
  std::int64_t max_staleness_served = 0;
};

/// Runs the dedicated parameter-server service loop on the calling rank
/// (must be rank 0; the server is not a worker). Serves pulls and applies
/// pushes from ranks 1..n-1 until every worker sends DONE; a pull for
/// worker step t is deferred until t minus the slowest worker's applied
/// pushes is within `bound`. With bound 0 the server buffers each step's
/// pushes and applies them in rank order once all arrive — bit-
/// deterministic; with bound >= 1 pushes apply in arrival order, which is
/// deliberately not reproducible (the determinism matrix pins that down).
/// Final parameters live in `update.network()` when the loop returns.
PsStats run_parameter_server(Communicator& comm, ThreeStepOptimizer& update,
                             std::int64_t bound);

/// Worker half: pull parameters for the step, compute gradients locally,
/// push them back. Call finish() after the last step so the server's
/// service loop can terminate.
class BoundedStalenessWorker : public DistributedOptimizer {
 public:
  BoundedStalenessWorker(std::unique_ptr<ThreeStepOptimizer> base,
                         Communicator& comm);
  std::string name() const override { return "PS-bounded"; }
  TensorMap train(const TensorMap& feeds) override;
  void finish();
  std::int64_t steps_done() const { return step_; }

 private:
  std::int64_t step_ = 0;
};

/// MAVG: local optimizer step, then parameter averaging via allreduce.
class ModelAveraging : public DistributedOptimizer {
 public:
  ModelAveraging(std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm);
  std::string name() const override { return "MAVG"; }
  TensorMap train(const TensorMap& feeds) override;
};

/// DPSGD: local step, then average parameters with ring neighbors
/// (rank±1). Constant communication volume w.r.t. world size.
class NeighborDecentralized : public DistributedOptimizer {
 public:
  NeighborDecentralized(std::unique_ptr<ThreeStepOptimizer> base,
                        Communicator& comm);
  std::string name() const override { return "DPSGD"; }
  TensorMap train(const TensorMap& feeds) override;
};

/// Flattens all parameter gradients into one contiguous vector and back
/// (used by fused-buffer variants and SparCML).
std::vector<float> pack_gradients(Network& net);
void unpack_gradients(Network& net, std::span<const float> buffer);
std::vector<float> pack_parameters(Network& net);
void unpack_parameters(Network& net, std::span<const float> buffer);

}  // namespace d500
