#include "dist/netmodel.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace d500 {

namespace {
double log2ceil(int n) {
  return std::ceil(std::log2(static_cast<double>(std::max(n, 1))));
}
}  // namespace

double t_ring_allreduce(const NetParams& p, int nodes, double bytes) {
  if (nodes <= 1) return 0.0;
  const double n = nodes;
  return 2.0 * (n - 1.0) * p.alpha +
         2.0 * bytes * ((n - 1.0) / n) * p.beta +
         bytes * ((n - 1.0) / n) * p.gamma;
}

double t_rd_allreduce(const NetParams& p, int nodes, double bytes) {
  if (nodes <= 1) return 0.0;
  const double rounds = log2ceil(nodes);
  return rounds * (p.alpha + bytes * p.beta + bytes * p.gamma);
}

double t_bcast(const NetParams& p, int nodes, double bytes) {
  if (nodes <= 1) return 0.0;
  return log2ceil(nodes) * (p.alpha + bytes * p.beta);
}

double t_reduce(const NetParams& p, int nodes, double bytes) {
  if (nodes <= 1) return 0.0;
  return log2ceil(nodes) * (p.alpha + bytes * p.beta + bytes * p.gamma);
}

double t_central_ps(const NetParams& p, int nodes, double bytes) {
  if (nodes <= 1) return 0.0;
  // Incast: the server's NIC serializes (n-1) incoming gradient pushes,
  // then (n-1) outgoing parameter sends.
  const double n = nodes;
  return 2.0 * (n - 1.0) * (p.alpha + bytes * p.server_beta) +
         bytes * p.gamma * (n - 1.0);
}

double t_sharded_ps(const NetParams& p, int nodes, double bytes) {
  if (nodes <= 1) return 0.0;
  // Each node owns a B/n shard: a reduce + a broadcast per shard, all
  // shards concurrent; but every node participates in all 2n collectives,
  // so per-node wire volume is ~2B and the critical path is the tree depth
  // times the shard transfer, plus per-shard message latencies (the
  // many-small-messages overhead of PS sharding).
  const double n = nodes;
  const double shard = bytes / n;
  return 2.0 * n * p.alpha +
         2.0 * log2ceil(nodes) * (shard * p.beta) * n / 2.0 +
         bytes * p.gamma;
}

double t_async_ps_iteration(const NetParams& p, int nodes, double bytes,
                            double worker_compute_seconds) {
  // Server service time per worker iteration: receive push + send pull.
  const double service = 2.0 * (p.alpha + bytes * p.server_beta) +
                         bytes * p.gamma;
  // n workers contend for one server: stable only while n*service fits in
  // one compute period; beyond that the queue grows and the server paces
  // the system (the "workers queue up to communicate" effect, §V-E ¶).
  return std::max(worker_compute_seconds + service,
                  static_cast<double>(nodes) * service);
}

double t_neighbor_exchange(const NetParams& p, double bytes) {
  return 2.0 * (p.alpha + bytes * p.beta) + 2.0 * bytes * p.gamma;
}

SparseAllreduceTime t_sparse_allreduce(const NetParams& p, int nodes,
                                       double dense_bytes, double density,
                                       double switch_threshold,
                                       double filter_rate) {
  SparseAllreduceTime out;
  // Dense->sparse filtering (top-k selection pass over the gradient).
  out.seconds += dense_bytes * filter_rate;
  if (nodes <= 1) return out;
  const int rounds = static_cast<int>(log2ceil(nodes));
  double current_density = density;
  for (int r = 0; r < rounds; ++r) {
    if (current_density > switch_threshold) {
      // Dense exchange for the remaining rounds.
      const int remaining = rounds - r;
      out.seconds += remaining * (p.alpha + dense_bytes * p.beta +
                                  dense_bytes * p.gamma);
      out.bytes_per_node += remaining * dense_bytes;
      return out;
    }
    // Sparse exchange: index+value pairs double the per-entry payload.
    const double sparse_bytes = 2.0 * current_density * dense_bytes;
    out.seconds += p.alpha + sparse_bytes * p.beta +
                   sparse_bytes * p.gamma * 2.0;  // sparse merge is slower
    out.bytes_per_node += sparse_bytes;
    current_density = std::min(1.0, current_density * 2.0);  // index union
  }
  return out;
}

}  // namespace d500
