#include "dist/eager.hpp"

#include <algorithm>

#include "core/metrics_registry.hpp"
#include "core/trace.hpp"

namespace d500 {

namespace {
Counter& stale_counter() {
  static Counter& c = MetricsRegistry::instance().counter("eager.stale_uses");
  return c;
}
}  // namespace

EagerAllreduce::EagerAllreduce(int world, std::int64_t staleness_bound)
    : world_(world),
      bound_(staleness_bound < 0 ? 0 : staleness_bound),
      depth_(bound_ + 1),
      slots_(static_cast<std::size_t>(world)),
      stale_by_rank_(static_cast<std::size_t>(world), 0) {
  D500_CHECK_MSG(world >= 1, "EagerAllreduce: world must have >= 1 rank");
  for (auto& per_rank : slots_)
    per_rank.resize(static_cast<std::size_t>(depth_));
}

void EagerAllreduce::allreduce(Communicator& comm, std::span<float> data) {
  D500_CHECK_MSG(comm.size() == world_,
                 "EagerAllreduce: world size mismatch (board built for "
                     << world_ << ", communicator has " << comm.size() << ")");
  const int n = world_;
  const int r = comm.rank();
  FaultInjector& inj = comm.world_->fault_injector();
  // A scheduled straggler pays its delay at deposit time — timing only,
  // the substitution schedule below is what changes data.
  inj.maybe_slow(r);
  if (n == 1) return;
  D500_TRACE_SCOPE("dist", "eager_allreduce");
  // Flat eager exchange: each rank ships its contribution to n-1 peers.
  comm.world_->charge(
      r, static_cast<std::uint64_t>(n - 1) * data.size() * sizeof(float),
      static_cast<std::uint64_t>(n - 1));

  std::unique_lock<std::mutex> lock(mu_);
  const std::int64_t k = round_;
  auto& slot =
      slots_[static_cast<std::size_t>(r)][static_cast<std::size_t>(k % depth_)];
  slot.assign(data.begin(), data.end());
  if (++arrived_ == n) {
    // Last depositor resolves the read set once: every rank then sums the
    // exact same substituted contributions, in rank index order.
    age_.assign(static_cast<std::size_t>(n), 0);
    for (int p = 0; p < n; ++p) {
      const std::int64_t s = inj.staleness(p, k, bound_);
      age_[static_cast<std::size_t>(p)] = s;
      if (s > 0) {
        ++stale_events_;
        ++stale_by_rank_[static_cast<std::size_t>(p)];
        stale_counter().add(1);
      }
      max_staleness_ = std::max(max_staleness_, s);
    }
    trace_counter("dist", "stale_uses", static_cast<double>(stale_events_));
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return arrived_ == n; });
  }

  // Sum in rank index order; a rank with age s contributes its round k-s
  // deposit (s <= bound < depth_, so the slot still holds it).
  for (int p = 0; p < n; ++p) {
    const std::int64_t used = k - age_[static_cast<std::size_t>(p)];
    const auto& contrib = slots_[static_cast<std::size_t>(p)]
                                [static_cast<std::size_t>(used % depth_)];
    D500_CHECK_MSG(contrib.size() == data.size(),
                   "EagerAllreduce: buffer size changed across rounds (rank "
                       << p << " round " << used << " has " << contrib.size()
                       << " elements, want " << data.size() << ")");
    if (p == 0)
      std::copy(contrib.begin(), contrib.end(), data.begin());
    else
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += contrib[i];
  }

  // Exit barrier: the next round's deposits overwrite the oldest history
  // slot, so nobody may deposit round k+1 while round k reads are live.
  if (++departed_ == n) {
    arrived_ = 0;
    departed_ = 0;
    ++round_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return round_ != k; });
  }
}

std::int64_t EagerAllreduce::rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return round_;
}

std::uint64_t EagerAllreduce::stale_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_events_;
}

std::int64_t EagerAllreduce::max_staleness_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_staleness_;
}

std::uint64_t EagerAllreduce::stale_events_for(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_by_rank_[static_cast<std::size_t>(rank)];
}

}  // namespace d500
