// Gradient compression (the paper's "Others" use case: "What is the
// reduction in communication over the network, when a certain compression
// scheme is applied in training?").
//
// Uniform stochastic int8 quantization with per-message scale and
// per-worker error feedback (the residual of each quantization is added
// back before the next one, preserving convergence), applied to the
// centralized scheme: workers push quantized gradients (1/4 the bytes),
// the server dequantizes, averages, updates, and broadcasts quantized
// parameter *deltas* back. Quantized payloads travel through the
// float-only SimMPI transport bit-packed 4-per-float.
#pragma once

#include "dist/dist_optimizer.hpp"

namespace d500 {

/// Quantized vector: int8 payload + scale such that
/// value[i] ~ scale * q[i], with stochastic rounding driven by `rng`.
struct QuantizedVector {
  std::vector<std::int8_t> q;
  float scale = 0.0f;
};

QuantizedVector quantize_int8(std::span<const float> values, Rng& rng);

/// Dequantizes into `out` (sized like the original vector).
void dequantize_int8(const QuantizedVector& v, std::span<float> out);

/// Bit-packing through the float-only transport (4 int8 per float).
std::vector<float> pack_quantized(const QuantizedVector& v);
QuantizedVector unpack_quantized(std::span<const float> msg,
                                 std::size_t count);

/// PSSGD with int8-compressed pushes and broadcasts; error feedback on
/// both the workers' gradients and the server's parameter deltas.
class CompressedCentralized : public DistributedOptimizer {
 public:
  CompressedCentralized(std::unique_ptr<ThreeStepOptimizer> base,
                        Communicator& comm, std::uint64_t seed);
  std::string name() const override { return "PSSGD+int8"; }
  TensorMap train(const TensorMap& feeds) override;

 private:
  Rng rng_;
  std::vector<float> grad_residual_;    // worker-side error feedback
  std::vector<float> delta_residual_;   // server-side error feedback
  std::vector<float> server_params_;    // rank 0 only: master copy
};

}  // namespace d500
