// SparCML-style sparse allreduce (Renggli, Alistarh & Hoefler 2018),
// reimplemented over SimMPI as the paper's §V-E uses it: a custom Deep500
// operator implementing sparse gradient aggregation.
//
// Pipeline per step: top-k sparsification with residual feedback (the
// dropped mass is accumulated locally and re-added next step, preserving
// convergence), then a recursive-doubling exchange of index/value lists
// that switches to the dense representation once the merged vector's
// density crosses a threshold — the dynamic sparse->dense switch of the
// original system. The density growth with node count is exactly the
// effect the paper cites for SparCML's runtime increasing with nodes.
#pragma once

#include "dist/dist_optimizer.hpp"

namespace d500 {

/// Sparse vector: sorted unique indices + values over a dense domain.
struct SparseVector {
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
  std::int64_t dense_size = 0;

  double density() const {
    return dense_size == 0
               ? 0.0
               : static_cast<double>(indices.size()) /
                     static_cast<double>(dense_size);
  }
  std::size_t wire_bytes() const {
    return indices.size() * (sizeof(std::uint32_t) + sizeof(float)) + 16;
  }
};

/// Keeps the k largest-magnitude entries.
SparseVector sparsify_topk(std::span<const float> dense, std::int64_t k);

/// Sums two sparse vectors (union of indices).
SparseVector sparse_add(const SparseVector& a, const SparseVector& b);

void densify(const SparseVector& v, std::span<float> out);

struct SparseAllreduceStats {
  std::uint64_t bytes_sent = 0;  // this rank, app-level
  double final_density = 0.0;
  bool switched_to_dense = false;
};

/// Recursive-doubling sparse allreduce with dense switching. `data` holds
/// this rank's sparsified contribution on entry and the full (dense) sum
/// on exit. Requires power-of-two world sizes 1,2,4,... (the benchmarked
/// node counts); throws otherwise.
SparseAllreduceStats sparse_allreduce(Communicator& comm,
                                      const SparseVector& contribution,
                                      std::span<float> dense_out,
                                      double dense_switch_threshold = 0.35);

/// DSGD with SparCML sparse gradient aggregation (+ residual feedback).
/// When the executor is a PlanExecutor with overlap_comm on, the
/// residual-add + pack of each gradient runs from the grad-ready hook as
/// backprop retires it (same element-wise arithmetic, overlapped with the
/// remaining backward ops); the global top-k selection necessarily stays
/// after backprop — it needs every gradient.
class SparCMLOptimizer : public DistributedOptimizer {
 public:
  SparCMLOptimizer(std::unique_ptr<ThreeStepOptimizer> base,
                   Communicator& comm, double density = 0.1,
                   double dense_switch_threshold = 0.35);
  std::string name() const override { return "SparCML"; }
  TensorMap train(const TensorMap& feeds) override;

  double last_density() const { return last_density_; }
  /// Gradients packed via the grad-ready hook across all steps so far.
  std::uint64_t hook_packs() const { return hook_packs_; }

 private:
  double density_;
  double switch_threshold_;
  double last_density_ = 0.0;
  std::vector<float> residual_;
  std::vector<float> packed_;
  std::map<std::string, std::size_t> pack_offset_;
  std::uint64_t hook_packs_ = 0;
};

}  // namespace d500
