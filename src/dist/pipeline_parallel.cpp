#include "dist/pipeline_parallel.hpp"

#include <algorithm>
#include <mutex>
#include <set>

#include "graph/shape_inference.hpp"

namespace d500 {

std::vector<PipelineStage> split_model_stages(const Model& model,
                                              int stages) {
  model.validate();
  D500_CHECK_MSG(stages >= 1 &&
                 stages <= static_cast<int>(model.nodes.size()),
                 "split_model_stages: need 1 <= stages <= node count");
  const auto shapes = infer_shapes(model);

  // Contiguous balanced partition of the (topologically ordered) nodes.
  const std::size_t n = model.nodes.size();
  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // [begin, end)
  for (int s = 0; s < stages; ++s)
    ranges.emplace_back(n * static_cast<std::size_t>(s) / stages,
                        n * (static_cast<std::size_t>(s) + 1) / stages);

  // Stage index of each produced value (-1 driver input, -2 initializer).
  std::map<std::string, int> producer_stage;
  for (const auto& in : model.graph_inputs) producer_stage[in] = -1;
  for (const auto& [name, _] : model.initializers) producer_stage[name] = -2;
  for (int s = 0; s < stages; ++s)
    for (std::size_t i = ranges[s].first; i < ranges[s].second; ++i)
      for (const auto& out : model.nodes[i].outputs)
        producer_stage[out] = s;

  // Last stage that consumes each activation (for relay extent), and
  // whether a value is an original graph output (must reach the last
  // stage, which publishes results).
  std::map<std::string, int> last_consumer;
  for (int s = 0; s < stages; ++s)
    for (std::size_t i = ranges[s].first; i < ranges[s].second; ++i)
      for (const auto& in : model.nodes[i].inputs)
        last_consumer[in] = std::max(last_consumer.count(in)
                                         ? last_consumer[in]
                                         : -1,
                                     s);
  const std::set<std::string> graph_outputs(model.graph_outputs.begin(),
                                            model.graph_outputs.end());

  // cross[b] = activations flowing over the boundary between stage b and
  // b+1: produced at stage <= b and either consumed after b or an original
  // graph output (relayed to the end). Values skipping stages are relayed
  // hop by hop, so every stage only talks to its neighbors.
  std::vector<std::vector<std::string>> cross(
      static_cast<std::size_t>(std::max(stages - 1, 0)));
  for (const auto& [value, p] : producer_stage) {
    if (p < 0) continue;  // driver inputs / initializers don't relay
    const int consumed_until =
        last_consumer.count(value) ? last_consumer[value] : -1;
    const int until = graph_outputs.count(value)
                          ? stages - 1
                          : consumed_until;
    for (int b = p; b < until && b < stages - 1; ++b)
      cross[static_cast<std::size_t>(b)].push_back(value);
  }
  for (auto& c : cross) std::sort(c.begin(), c.end());

  std::vector<PipelineStage> out(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    PipelineStage& stage = out[static_cast<std::size_t>(s)];
    ModelBuilder b(model.name + ".stage" + std::to_string(s));
    std::set<std::string> declared_inputs, declared_inits;

    // Received boundary values become inputs (including pass-throughs).
    if (s > 0) {
      for (const auto& value : cross[static_cast<std::size_t>(s - 1)]) {
        b.input(value, shapes.at(value));
        declared_inputs.insert(value);
        stage.recv_values.push_back(value);
      }
    }

    for (std::size_t i = ranges[s].first; i < ranges[s].second; ++i) {
      const ModelNode& node = model.nodes[i];
      for (const auto& in : node.inputs) {
        const int p = producer_stage.at(in);
        if (p == -2) {
          if (declared_inits.insert(in).second)
            b.initializer(in, model.initializers.at(in),
                          model.trainable.count(in) > 0);
        } else if (p == -1) {
          if (declared_inputs.insert(in).second) {
            b.input(in, shapes.at(in));
            stage.driver_inputs.push_back(in);
          }
        }
        // p >= 0 and p < s: already declared via recv_values above.
      }
      b.node(node.op_type, node.inputs, node.outputs, node.attrs, node.name);
    }

    // Outputs: the next boundary's values (produced locally or passed
    // through from an input), plus — on the last stage — every original
    // graph output.
    std::set<std::string> declared_outputs;
    if (s < stages - 1) {
      for (const auto& value : cross[static_cast<std::size_t>(s)]) {
        if (declared_outputs.insert(value).second) b.output(value);
        stage.send_values.push_back(value);
      }
    } else {
      for (const auto& value : model.graph_outputs)
        if (declared_outputs.insert(value).second) b.output(value);
    }
    stage.model = b.build();
  }
  return out;
}

std::vector<TensorMap> run_pipeline(
    SimMpi& world, const std::vector<PipelineStage>& stages,
    const std::vector<TensorMap>& microbatch_feeds,
    const std::function<std::unique_ptr<GraphExecutor>(const Model&)>&
        make_executor) {
  D500_CHECK_MSG(world.size() == static_cast<int>(stages.size()),
                 "run_pipeline: world size must equal stage count");
  const auto nmb = static_cast<int>(microbatch_feeds.size());
  std::vector<TensorMap> results(static_cast<std::size_t>(nmb));
  std::mutex results_mu;

  world.run([&](Communicator& comm) {
    const int s = comm.rank();
    const PipelineStage& stage = stages[static_cast<std::size_t>(s)];
    auto exec = make_executor(stage.model);
    const auto stage_shapes = infer_shapes(stage.model);

    // Fill/drain schedule: each rank processes micro-batches in order;
    // SimMPI's buffered sends let stage k start micro-batch t+1 while
    // stage k+1 is still on t.
    for (int t = 0; t < nmb; ++t) {
      TensorMap feeds;
      for (const auto& name : stage.driver_inputs) {
        auto it = microbatch_feeds[static_cast<std::size_t>(t)].find(name);
        D500_CHECK_MSG(it != microbatch_feeds[static_cast<std::size_t>(t)].end(),
                       "run_pipeline: micro-batch " << t
                       << " misses driver input '" << name << "'");
        feeds[name] = it->second;
      }
      for (std::size_t k = 0; k < stage.recv_values.size(); ++k) {
        const std::string& value = stage.recv_values[k];
        Tensor buf(stage_shapes.at(value));
        comm.recv(s - 1, buf.span(), /*tag=*/1000 + static_cast<int>(k));
        feeds[value] = std::move(buf);
      }

      // Pass-through values the stage only relays are part of both feeds
      // and outputs; the executor resolves them without recomputation.
      TensorMap out = exec->inference(feeds);
      // Pass-through of received values the stage model does not expose as
      // computed outputs (pure relays that are graph inputs of the stage):
      for (const auto& value : stage.send_values)
        if (!out.count(value) && feeds.count(value)) out[value] = feeds[value];

      for (std::size_t k = 0; k < stage.send_values.size(); ++k) {
        const Tensor& v = out.at(stage.send_values[k]);
        comm.send(s + 1, v.span(), /*tag=*/1000 + static_cast<int>(k));
      }
      if (s == static_cast<int>(stages.size()) - 1) {
        std::lock_guard<std::mutex> lock(results_mu);
        results[static_cast<std::size_t>(t)] = std::move(out);
      }
    }
  });
  return results;
}

}  // namespace d500
