// Virtual-time scaling simulator for the Fig. 12 reproduction: combines a
// per-node compute-time model with the netmodel collective costs according
// to each distributed scheme's synchronization semantics, yielding
// throughput (images/s) versus node count for strong and weak scaling.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dist/netmodel.hpp"

namespace d500 {

/// The distributed training schemes compared in Fig. 12.
enum class DistScheme {
  kCDSGD,      // DSGD via custom C++ allreduce operator (direct pointers)
  kHorovod,    // fused-buffer ring allreduce
  kTFPS,       // sharded parameter server (TensorFlow-style)
  kSparCML,    // sparse allreduce
  kRefDsgd,    // Python-reference DSGD (staging conversions per tensor)
  kRefPssgd,   // Python-reference central PS
  kRefAsgd,    // Python-reference asynchronous PS
  kRefDpsgd,   // Python-reference neighbor decentralized
  kRefMavg,    // Python-reference model averaging
};

const char* scheme_name(DistScheme s);

struct ScalingConfig {
  /// Per-sample forward+backward time on one node (s). Default set to a
  /// P100-class ResNet-50 rate (~225 images/s).
  double compute_seconds_per_sample = 1.0 / 225.0;
  /// Model size (ResNet-50: 25.5M float32 parameters).
  double param_bytes = 25.5e6 * 4;
  /// Number of parameter tensors (per-tensor reference paths pay per-call
  /// overhead for each).
  int tensors = 161;
  /// Python-interpreter overhead per communication call in the reference
  /// implementations (s).
  double py_call_overhead = 5e-3;
  /// NumPy staging-conversion bandwidth for the reference paths (B/s);
  /// each tensor crosses twice per direction (the conversions the paper
  /// blames for the ~10x REF-vs-C++ gap).
  double py_conversion_bw = 0.15e9;
  /// SparCML gradient density after top-k.
  double sparse_density = 0.05;
  /// Maximum usable nodes before TF-PS crashes / Horovod accumulates
  /// incorrectly in the paper's weak-scaling run.
  int tfps_crash_nodes = 256;
  int horovod_unstable_nodes = 256;
};

struct SchemePoint {
  int nodes = 0;
  double iteration_seconds = 0.0;
  double comm_seconds = 0.0;
  double throughput = 0.0;  // images/s (aggregate)
  bool failed = false;      // reproduced failure mode (crash / divergence)
  std::string failure_reason;
  double comm_gbytes_per_node = 0.0;  // app-level, per iteration
};

/// One scaling point. `global_batch` is fixed for strong scaling; for weak
/// scaling pass global_batch = per_node_batch * nodes.
SchemePoint simulate_point(DistScheme scheme, const NetParams& net,
                           const ScalingConfig& cfg, int nodes,
                           std::int64_t global_batch, bool weak_scaling);

/// Sweep helper.
std::vector<SchemePoint> simulate_scaling(DistScheme scheme,
                                          const NetParams& net,
                                          const ScalingConfig& cfg,
                                          const std::vector<int>& node_counts,
                                          std::int64_t batch,
                                          bool weak_scaling);

}  // namespace d500
