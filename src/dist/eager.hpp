// Eager (partial) allreduce: an allreduce that does not wait for straggler
// ranks. When a rank's contribution to a round is scheduled late by the
// world's FaultInjector, every reader substitutes that rank's most recent
// on-time contribution instead — up to `staleness_bound` rounds old (the
// injector clamps the consecutive-lateness streak at the bound, so no
// observer ever reads past it; D500_STALENESS=0 degenerates to a fully
// synchronous allreduce).
//
// Determinism contract: lateness is schedule-driven, never timing-driven.
// The last depositor of a round resolves the round's read set once from
// the injector's pure (seed, rank, round) schedule, and every rank sums
// the exact same substituted contributions in rank index order — so the
// result is bit-reproducible for a given (seed, plan, bound) at every
// thread count, which is what test_faults' determinism matrix asserts.
//
// The board is shared state standing in for the network: each rank's
// per-round deposit is charged to SimMpi's wire counters as the (n-1)
// peer messages a flat eager exchange would send.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "dist/simmpi.hpp"

namespace d500 {

/// One shared board per SimMpi world (construct outside run(), pass by
/// reference to every rank, like ParameterStore).
class EagerAllreduce {
 public:
  EagerAllreduce(int world, std::int64_t staleness_bound);

  /// In-place sum over the world with stale substitution (see file
  /// comment). All ranks must call with equal-sized buffers each round.
  void allreduce(Communicator& comm, std::span<float> data);

  std::int64_t bound() const { return bound_; }
  /// Completed rounds.
  std::int64_t rounds() const;
  /// Total (rank, round) reads served from a stale contribution.
  std::uint64_t stale_events() const;
  /// Largest contribution age (in rounds) any reader consumed.
  std::int64_t max_staleness_seen() const;
  /// Stale reads attributed to `rank`'s contributions.
  std::uint64_t stale_events_for(int rank) const;

 private:
  const int world_;
  const std::int64_t bound_;
  const std::int64_t depth_;  // bound + 1 rounds of history per rank

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t round_ = 0;
  int arrived_ = 0;
  int departed_ = 0;
  // slots_[rank][round % depth_] holds that rank's deposit for `round`.
  std::vector<std::vector<std::vector<float>>> slots_;
  // Resolved read set for the in-flight round: contribution age per rank.
  std::vector<std::int64_t> age_;

  std::uint64_t stale_events_ = 0;
  std::int64_t max_staleness_ = 0;
  std::vector<std::uint64_t> stale_by_rank_;
};

}  // namespace d500
