#include "dist/dist_optimizer.hpp"

#include <algorithm>
#include <cstring>

#include "core/env.hpp"
#include "core/trace.hpp"
#include "frameworks/plan_executor.hpp"

namespace d500 {

DistributedOptimizer::DistributedOptimizer(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm)
    : Optimizer(base->executor()), base_(std::move(base)), comm_(comm) {}

TensorMap DistributedOptimizer::step_with_gradients(
    const TensorMap& feeds, const std::function<void()>& process_gradients) {
  base_->new_input();
  for (const auto& pname : network().parameters()) base_->prepare_param(pname);
  TensorMap out = executor().inference_and_backprop(feeds, loss_value());
  process_gradients();
  return out;
}

// ---- pack/unpack -----------------------------------------------------------

std::vector<float> pack_gradients(Network& net) {
  std::vector<float> buf;
  for (const auto& [pname, gname] : net.gradients()) {
    const Tensor& g = net.fetch_tensor(gname);
    buf.insert(buf.end(), g.data(), g.data() + g.elements());
  }
  return buf;
}

void unpack_gradients(Network& net, std::span<const float> buffer) {
  std::size_t off = 0;
  for (const auto& [pname, gname] : net.gradients()) {
    Tensor& g = net.fetch_tensor(gname);
    const auto n = static_cast<std::size_t>(g.elements());
    D500_CHECK_MSG(off + n <= buffer.size(), "unpack_gradients: overrun");
    std::memcpy(g.data(), buffer.data() + off, n * sizeof(float));
    off += n;
  }
  D500_CHECK_MSG(off == buffer.size(), "unpack_gradients: size mismatch");
}

std::vector<float> pack_parameters(Network& net) {
  std::vector<float> buf;
  for (const auto& pname : net.parameters()) {
    const Tensor& p = net.fetch_tensor(pname);
    buf.insert(buf.end(), p.data(), p.data() + p.elements());
  }
  return buf;
}

void unpack_parameters(Network& net, std::span<const float> buffer) {
  std::size_t off = 0;
  for (const auto& pname : net.parameters()) {
    Tensor& p = net.fetch_tensor(pname);
    const auto n = static_cast<std::size_t>(p.elements());
    D500_CHECK_MSG(off + n <= buffer.size(), "unpack_parameters: overrun");
    std::memcpy(p.data(), buffer.data() + off, n * sizeof(float));
    off += n;
  }
  D500_CHECK_MSG(off == buffer.size(), "unpack_parameters: size mismatch");
}

// ---- ConsistentDecentralized (DSGD / CDSGD / Horovod-like) -----------------

ConsistentDecentralized::ConsistentDecentralized(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm,
    DsgdOptions options)
    : DistributedOptimizer(std::move(base), comm), options_(options) {}

std::string ConsistentDecentralized::name() const {
  if (options_.fuse_buffers) return "Horovod-like";
  return options_.staging_copies ? "REF-dsgd" : "CDSGD";
}

TensorMap ConsistentDecentralized::train(const TensorMap& feeds) {
  return step_with_gradients(feeds, [&] {
    const float inv_n = 1.0f / static_cast<float>(comm_.size());
    auto allreduce = [&](std::span<float> data) {
      if (options_.algo == AllreduceAlgo::kRing)
        comm_.allreduce_sum_ring(data);
      else
        comm_.allreduce_sum_rd(data);
      count(data.size() * sizeof(float));
    };

    if (options_.fuse_buffers) {
      // Horovod-style: one fused allreduce over all gradients.
      fusion_buffer_ = pack_gradients(network());
      allreduce(fusion_buffer_);
      for (auto& v : fusion_buffer_) v *= inv_n;
      unpack_gradients(network(), fusion_buffer_);
    } else {
      for (const auto& [pname, gname] : network().gradients()) {
        Tensor& g = network().fetch_tensor(gname);
        if (options_.staging_copies) {
          // Python-reference path: convert to a staging array, communicate,
          // convert back (the NumPy round trip of the paper's REF-dsgd).
          staging_.assign(g.data(), g.data() + g.elements());
          allreduce(staging_);
          std::memcpy(g.data(), staging_.data(),
                      staging_.size() * sizeof(float));
        } else {
          // Custom C++ operator path: direct pointers, no conversion.
          allreduce(g.span());
        }
        scale(g, inv_n);
      }
    }
    // Apply the base update rule on the averaged gradients.
    for (const auto& [pname, gname] : network().gradients()) {
      const Tensor& g = network().fetch_tensor(gname);
      Tensor updated =
          base_->update_rule(g, network().fetch_tensor(pname), pname);
      network().feed_tensor(pname, std::move(updated));
    }
  });
}

std::unique_ptr<ConsistentDecentralized> make_horovod_like(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm) {
  DsgdOptions opt;
  opt.fuse_buffers = true;
  return std::make_unique<ConsistentDecentralized>(std::move(base), comm, opt);
}

// ---- BucketedDecentralized (bucketed DSGD, optional overlap) ---------------

std::vector<GradientBucket> build_gradient_buckets(const Network& net,
                                                   std::size_t cap_bytes) {
  std::vector<GradientBucket> buckets;
  for (const auto& pname : backward_ready_param_order(net)) {
    const auto elems =
        static_cast<std::size_t>(net.fetch_tensor(pname).elements());
    const std::size_t bytes = elems * sizeof(float);
    if (buckets.empty() ||
        buckets.back().elements * sizeof(float) + bytes > cap_bytes)
      buckets.emplace_back();
    GradientBucket& b = buckets.back();
    b.params.push_back(pname);
    b.offsets.push_back(b.elements);
    b.elements += elems;
  }
  return buckets;
}

BucketedDecentralized::BucketedDecentralized(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm,
    BucketOptions options)
    : DistributedOptimizer(std::move(base), comm), options_(options) {
  if (options_.cap_bytes == 0) options_.cap_bytes = bucket_cap_bytes();
  overlap_ = options_.overlap < 0 ? overlap_comm_setting()
                                  : options_.overlap != 0;
}

std::string BucketedDecentralized::name() const {
  return overlap_ ? "Bucketed-DSGD/overlap" : "Bucketed-DSGD";
}

void BucketedDecentralized::ensure_buckets() {
  if (!buckets_.empty()) return;
  buckets_ = build_gradient_buckets(network(), options_.cap_bytes);
  bucket_bufs_.resize(buckets_.size());
  param_site_.clear();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    bucket_bufs_[i].assign(buckets_[i].elements, 0.0f);
    for (std::size_t k = 0; k < buckets_[i].params.size(); ++k)
      param_site_[buckets_[i].params[k]] = {i, buckets_[i].offsets[k]};
  }
}

TensorMap BucketedDecentralized::train(const TensorMap& feeds) {
  ensure_buckets();
  auto* plan = dynamic_cast<PlanExecutor*>(&executor());
  const bool overlap = overlap_ && plan != nullptr;

  base_->new_input();
  for (const auto& pname : network().parameters()) base_->prepare_param(pname);

  bucket_reqs_.clear();
  bucket_reqs_.resize(buckets_.size());
  if (overlap) {
    bucket_pending_.assign(buckets_.size(), 0);
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      bucket_pending_[i] = static_cast<int>(buckets_[i].params.size());
    plan->set_grad_ready_hook([this](const std::string& pname,
                                     const Tensor& g) {
      auto it = param_site_.find(pname);
      if (it == param_site_.end()) return;
      const auto [bi, off] = it->second;
      {
        D500_TRACE_SCOPE("dist", "bucket_pack");
        std::memcpy(bucket_bufs_[bi].data() + off, g.data(), g.bytes());
      }
      if (--bucket_pending_[bi] == 0) {
        // Bucket complete: launch its allreduce while backprop continues.
        bucket_reqs_[bi] = comm_.iallreduce_sum(
            bucket_bufs_[bi], options_.tag_base + static_cast<int>(bi));
        count(bucket_bufs_[bi].size() * sizeof(float));
        ++hook_launches_;
        overlap_bytes_ += bucket_bufs_[bi].size() * sizeof(float);
        trace_counter("dist", "overlap_bytes",
                      static_cast<double>(overlap_bytes_));
      }
    });
  }
  TensorMap out = executor().inference_and_backprop(feeds, loss_value());
  if (overlap) {
    plan->set_grad_ready_hook(nullptr);
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      D500_CHECK_MSG(bucket_pending_[i] == 0,
                     name() << ": bucket " << i << " never completed ("
                            << bucket_pending_[i] << " gradients missing)");
  }

  // Drain (overlap) or run (blocking) the bucket allreduces in launch
  // order, then scale and scatter back — one shared code path, so the two
  // modes do the exact same arithmetic.
  const float inv_n = 1.0f / static_cast<float>(comm_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    std::vector<float>& buf = bucket_bufs_[i];
    if (overlap) {
      comm_.wait(bucket_reqs_[i]);
    } else {
      const GradientBucket& b = buckets_[i];
      for (std::size_t k = 0; k < b.params.size(); ++k) {
        const Tensor& g = network().fetch_tensor(
            Network::gradient_name(b.params[k]));
        std::memcpy(buf.data() + b.offsets[k], g.data(), g.bytes());
      }
      comm_.allreduce_sum_ring(buf);
      count(buf.size() * sizeof(float));
    }
    for (auto& v : buf) v *= inv_n;
    const GradientBucket& b = buckets_[i];
    for (std::size_t k = 0; k < b.params.size(); ++k) {
      Tensor& g =
          network().fetch_tensor(Network::gradient_name(b.params[k]));
      std::memcpy(g.data(), buf.data() + b.offsets[k], g.bytes());
    }
  }
  // Apply the base update rule on the averaged gradients (declaration
  // order, like every other variant).
  for (const auto& [pname, gname] : network().gradients()) {
    const Tensor& g = network().fetch_tensor(gname);
    Tensor updated =
        base_->update_rule(g, network().fetch_tensor(pname), pname);
    network().feed_tensor(pname, std::move(updated));
  }
  return out;
}

// ---- ConsistentCentralized (PSSGD) -----------------------------------------

ConsistentCentralized::ConsistentCentralized(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm)
    : DistributedOptimizer(std::move(base), comm) {}

TensorMap ConsistentCentralized::train(const TensorMap& feeds) {
  return step_with_gradients(feeds, [&] {
    const float inv_n = 1.0f / static_cast<float>(comm_.size());
    for (const auto& [pname, gname] : network().gradients()) {
      Tensor& g = network().fetch_tensor(gname);
      // Workers reduce gradients to the server (rank 0)...
      comm_.reduce_sum(g.span(), /*root=*/0);
      count(g.bytes());
      Tensor& p = network().fetch_tensor(pname);
      if (comm_.rank() == 0) {
        scale(g, inv_n);
        Tensor updated = base_->update_rule(g, p, pname);
        network().feed_tensor(pname, std::move(updated));
      }
      // ...and receive the new parameters back.
      Tensor& updated = network().fetch_tensor(pname);
      comm_.bcast(updated.span(), /*root=*/0);
      count(updated.bytes());
    }
  });
}

// ---- ShardedParameterServer (TF-PS-like) ----------------------------------

ShardedParameterServer::ShardedParameterServer(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm)
    : DistributedOptimizer(std::move(base), comm) {}

TensorMap ShardedParameterServer::train(const TensorMap& feeds) {
  return step_with_gradients(feeds, [&] {
    const float inv_n = 1.0f / static_cast<float>(comm_.size());
    int shard = 0;
    for (const auto& [pname, gname] : network().gradients()) {
      const int owner = shard % comm_.size();
      ++shard;
      Tensor& g = network().fetch_tensor(gname);
      comm_.reduce_sum(g.span(), owner);
      count(g.bytes());
      Tensor& p = network().fetch_tensor(pname);
      if (comm_.rank() == owner) {
        scale(g, inv_n);
        Tensor updated = base_->update_rule(g, p, pname);
        network().feed_tensor(pname, std::move(updated));
      }
      Tensor& updated = network().fetch_tensor(pname);
      comm_.bcast(updated.span(), owner);
      count(updated.bytes());
    }
  });
}

// ---- ParameterStore + asynchronous variants --------------------------------

ParameterStore::ParameterStore(const Network& net) {
  for (const auto& pname : net.parameters())
    params_.emplace(pname, net.fetch_tensor(pname));
}

void ParameterStore::register_worker(int rank, int world) {
  std::lock_guard<std::mutex> lock(mu_);
  if (steps_.size() != static_cast<std::size_t>(world))
    steps_.assign(static_cast<std::size_t>(world), 0);
}

std::uint64_t ParameterStore::pull_into(Network& net) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t bytes = 0;
  for (const auto& [pname, value] : params_) {
    net.feed_tensor(pname, value);  // copy
    bytes += value.bytes();
  }
  return bytes;
}

std::uint64_t ParameterStore::push_gradients(Network& net, double lr) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t bytes = 0;
  for (const auto& [pname, gname] : net.gradients()) {
    const Tensor& g = net.fetch_tensor(gname);
    auto it = params_.find(pname);
    D500_CHECK_MSG(it != params_.end(), "ParameterStore: unknown param");
    axpy(static_cast<float>(-lr), g, it->second);
    bytes += g.bytes();
  }
  return bytes;
}

void ParameterStore::advance(int rank) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++steps_[static_cast<std::size_t>(rank)];
  }
  cv_.notify_all();
}

void ParameterStore::wait_for_staleness(int rank, std::int64_t bound) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    const std::int64_t mine = steps_[static_cast<std::size_t>(rank)];
    std::int64_t slowest = mine;
    for (auto s : steps_) slowest = std::min(slowest, s);
    return mine - slowest <= bound;
  });
}

InconsistentCentralized::InconsistentCentralized(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm,
    ParameterStore& store, double lr)
    : DistributedOptimizer(std::move(base), comm), store_(store), lr_(lr) {
  store_.register_worker(comm.rank(), comm.size());
}

TensorMap InconsistentCentralized::train(const TensorMap& feeds) {
  // Pull the (possibly mid-update) global parameters, compute, push.
  app_bytes_ += store_.pull_into(network());
  ++comm_calls_;
  base_->new_input();
  for (const auto& pname : network().parameters()) base_->prepare_param(pname);
  TensorMap out = executor().inference_and_backprop(feeds, loss_value());
  app_bytes_ += store_.push_gradients(network(), lr_);
  ++comm_calls_;
  store_.advance(comm_.rank());
  return out;
}

StaleSynchronous::StaleSynchronous(std::unique_ptr<ThreeStepOptimizer> base,
                                   Communicator& comm, ParameterStore& store,
                                   double lr, std::int64_t bound)
    : DistributedOptimizer(std::move(base), comm), store_(store), lr_(lr),
      bound_(bound) {
  store_.register_worker(comm.rank(), comm.size());
}

TensorMap StaleSynchronous::train(const TensorMap& feeds) {
  store_.wait_for_staleness(comm_.rank(), bound_);
  app_bytes_ += store_.pull_into(network());
  ++comm_calls_;
  base_->new_input();
  for (const auto& pname : network().parameters()) base_->prepare_param(pname);
  TensorMap out = executor().inference_and_backprop(feeds, loss_value());
  app_bytes_ += store_.push_gradients(network(), lr_);
  ++comm_calls_;
  store_.advance(comm_.rank());
  return out;
}

// ---- EagerDecentralized (eager DSGD over a stale-substituting board) -------

EagerDecentralized::EagerDecentralized(std::unique_ptr<ThreeStepOptimizer> base,
                                       Communicator& comm,
                                       EagerAllreduce& board)
    : DistributedOptimizer(std::move(base), comm), board_(board) {}

TensorMap EagerDecentralized::train(const TensorMap& feeds) {
  return step_with_gradients(feeds, [&] {
    const float inv_n = 1.0f / static_cast<float>(comm_.size());
    fusion_buffer_ = pack_gradients(network());
    board_.allreduce(comm_, fusion_buffer_);
    count(fusion_buffer_.size() * sizeof(float));
    for (auto& v : fusion_buffer_) v *= inv_n;
    unpack_gradients(network(), fusion_buffer_);
    for (const auto& [pname, gname] : network().gradients()) {
      const Tensor& g = network().fetch_tensor(gname);
      Tensor updated =
          base_->update_rule(g, network().fetch_tensor(pname), pname);
      network().feed_tensor(pname, std::move(updated));
    }
  });
}

// ---- Bounded-staleness parameter server over send/recv ---------------------

PsStats run_parameter_server(Communicator& comm, ThreeStepOptimizer& update,
                             std::int64_t bound) {
  D500_CHECK_MSG(comm.rank() == 0,
                 "run_parameter_server: the service loop runs on rank 0");
  D500_CHECK_MSG(bound >= 0, "run_parameter_server: bound must be >= 0");
  const int n = comm.size();
  const int workers = n - 1;
  PsStats stats;
  stats.applied.assign(static_cast<std::size_t>(n), 0);
  if (workers == 0) return stats;
  Network& net = update.network();
  // The server never runs backprop, so the gradient tensors worker pushes
  // land in do not exist yet — materialize them param-shaped.
  for (const auto& [pname, gname] : net.gradients())
    net.feed_tensor(gname, Tensor(net.fetch_tensor(pname).shape()));

  auto apply_push = [&](int rank, std::span<const float> grads) {
    D500_TRACE_SCOPE("dist", "ps_apply");
    unpack_gradients(net, grads);
    for (const auto& [pname, gname] : net.gradients()) {
      const Tensor& g = net.fetch_tensor(gname);
      Tensor updated = update.update_rule(g, net.fetch_tensor(pname), pname);
      net.feed_tensor(pname, std::move(updated));
    }
    ++stats.applied[static_cast<std::size_t>(rank)];
  };
  auto slowest = [&] {
    std::int64_t m = stats.applied[1];
    for (int r = 2; r < n; ++r)
      m = std::min(m, stats.applied[static_cast<std::size_t>(r)]);
    return m;
  };

  // Pulls waiting on the staleness window (worker step, or -1).
  std::vector<std::int64_t> pending_pull(static_cast<std::size_t>(n), -1);
  auto service_pulls = [&] {
    for (int r = 1; r < n; ++r) {
      const std::int64_t want = pending_pull[static_cast<std::size_t>(r)];
      if (want < 0 || want - slowest() > bound) continue;
      stats.max_staleness_served =
          std::max(stats.max_staleness_served, std::max<std::int64_t>(
                                                   0, want - slowest()));
      comm.send(r, pack_parameters(net), kPsDataTag);
      pending_pull[static_cast<std::size_t>(r)] = -1;
    }
  };

  // Bound 0 buffers each step's pushes and applies them in rank order once
  // every worker has pushed — the deterministic schedule the matrix test
  // pins down. Bound >= 1 applies in arrival order.
  std::map<std::int64_t, std::map<int, std::vector<float>>> step_pushes;
  int done = 0;
  while (done < workers) {
    auto [src, msg] = comm.recv_any(kPsCtrlTag);
    D500_CHECK_MSG(msg.size() >= 2, "parameter server: malformed control");
    const float op = msg[0];
    const auto step = static_cast<std::int64_t>(msg[1]);
    if (op == kPsOpDone) {
      ++done;
    } else if (op == kPsOpPull) {
      pending_pull[static_cast<std::size_t>(src)] = step;
      service_pulls();
    } else {
      std::span<const float> grads(msg.data() + 2, msg.size() - 2);
      if (bound == 0) {
        step_pushes[step][src].assign(grads.begin(), grads.end());
        auto it = step_pushes.find(step);
        if (static_cast<int>(it->second.size()) == workers) {
          for (auto& [r, buf] : it->second) apply_push(r, buf);
          step_pushes.erase(it);
        }
      } else {
        apply_push(src, grads);
      }
      service_pulls();
    }
  }
  D500_CHECK_MSG(step_pushes.empty(),
                 "parameter server: workers exited with buffered pushes");
  return stats;
}

BoundedStalenessWorker::BoundedStalenessWorker(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm)
    : DistributedOptimizer(std::move(base), comm) {
  D500_CHECK_MSG(comm.rank() != 0,
                 "BoundedStalenessWorker: rank 0 is the dedicated server");
}

TensorMap BoundedStalenessWorker::train(const TensorMap& feeds) {
  // Pull the parameters for this step (the server defers the reply until
  // the staleness window admits us).
  std::vector<float> ctrl = {kPsOpPull, static_cast<float>(step_)};
  comm_.send(0, ctrl, kPsCtrlTag);
  count(ctrl.size() * sizeof(float));
  std::size_t elems = 0;
  for (const auto& pname : network().parameters())
    elems += static_cast<std::size_t>(network().fetch_tensor(pname).elements());
  std::vector<float> params(elems);
  comm_.recv(0, params, kPsDataTag);
  count(params.size() * sizeof(float));
  unpack_parameters(network(), params);

  base_->new_input();
  for (const auto& pname : network().parameters()) base_->prepare_param(pname);
  TensorMap out = executor().inference_and_backprop(feeds, loss_value());

  // Push this step's gradients, step-prefixed so a bound-0 server can
  // batch them per step.
  std::vector<float> push = {kPsOpPush, static_cast<float>(step_)};
  const std::vector<float> grads = pack_gradients(network());
  push.insert(push.end(), grads.begin(), grads.end());
  comm_.send(0, push, kPsCtrlTag);
  count(push.size() * sizeof(float));
  ++step_;
  return out;
}

void BoundedStalenessWorker::finish() {
  std::vector<float> ctrl = {kPsOpDone, static_cast<float>(step_)};
  comm_.send(0, ctrl, kPsCtrlTag);
  count(ctrl.size() * sizeof(float));
}

// ---- ModelAveraging ----------------------------------------------------------

ModelAveraging::ModelAveraging(std::unique_ptr<ThreeStepOptimizer> base,
                               Communicator& comm)
    : DistributedOptimizer(std::move(base), comm) {}

TensorMap ModelAveraging::train(const TensorMap& feeds) {
  return step_with_gradients(feeds, [&] {
    // Local update first...
    for (const auto& [pname, gname] : network().gradients()) {
      const Tensor& g = network().fetch_tensor(gname);
      Tensor updated =
          base_->update_rule(g, network().fetch_tensor(pname), pname);
      network().feed_tensor(pname, std::move(updated));
    }
    // ...then average the models.
    const float inv_n = 1.0f / static_cast<float>(comm_.size());
    for (const auto& pname : network().parameters()) {
      Tensor& p = network().fetch_tensor(pname);
      comm_.allreduce_sum_ring(p.span());
      count(p.bytes());
      scale(p, inv_n);
    }
  });
}

// ---- NeighborDecentralized (DPSGD) ------------------------------------------

NeighborDecentralized::NeighborDecentralized(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm)
    : DistributedOptimizer(std::move(base), comm) {}

TensorMap NeighborDecentralized::train(const TensorMap& feeds) {
  return step_with_gradients(feeds, [&] {
    // Local update.
    for (const auto& [pname, gname] : network().gradients()) {
      const Tensor& g = network().fetch_tensor(gname);
      Tensor updated =
          base_->update_rule(g, network().fetch_tensor(pname), pname);
      network().feed_tensor(pname, std::move(updated));
    }
    // Mix with the two ring neighbors (constant volume in world size).
    const int n = comm_.size();
    if (n == 1) return;
    const int left = (comm_.rank() - 1 + n) % n;
    const int right = (comm_.rank() + 1) % n;
    for (const auto& pname : network().parameters()) {
      Tensor& p = network().fetch_tensor(pname);
      if (n == 2) {
        // Single neighbor: exchange once, average over 2.
        comm_.send(right, p.span(), /*tag=*/600);
        count(p.bytes());
        Tensor other(p.shape());
        comm_.recv(left, other.span(), /*tag=*/600);
        axpy(1.0f, other, p);
        scale(p, 0.5f);
        continue;
      }
      comm_.send(left, p.span(), /*tag=*/601);
      comm_.send(right, p.span(), /*tag=*/602);
      count(p.bytes());
      count(p.bytes());
      Tensor from_left(p.shape()), from_right(p.shape());
      comm_.recv(left, from_left.span(), /*tag=*/602);    // left's send-right
      comm_.recv(right, from_right.span(), /*tag=*/601);  // right's send-left

      axpy(1.0f, from_left, p);
      axpy(1.0f, from_right, p);
      scale(p, 1.0f / 3.0f);
    }
  });
}

}  // namespace d500
