#include "dist/compression.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace d500 {

QuantizedVector quantize_int8(std::span<const float> values, Rng& rng) {
  QuantizedVector out;
  out.q.resize(values.size());
  float mx = 0.0f;
  for (float v : values) mx = std::max(mx, std::abs(v));
  if (mx == 0.0f) {
    out.scale = 0.0f;
    return out;
  }
  out.scale = mx / 127.0f;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float x = values[i] / out.scale;  // in [-127, 127]
    const float lo = std::floor(x);
    // Stochastic rounding: unbiased quantization.
    const float frac = x - lo;
    const float r = rng.uniform() < frac ? lo + 1.0f : lo;
    out.q[i] = static_cast<std::int8_t>(
        std::clamp(r, -127.0f, 127.0f));
  }
  return out;
}

void dequantize_int8(const QuantizedVector& v, std::span<float> out) {
  D500_CHECK(out.size() == v.q.size());
  for (std::size_t i = 0; i < v.q.size(); ++i)
    out[i] = static_cast<float>(v.q[i]) * v.scale;
}

std::vector<float> pack_quantized(const QuantizedVector& v) {
  // Layout: [scale, packed int8 x4 per float...].
  std::vector<float> msg(1 + (v.q.size() + 3) / 4, 0.0f);
  msg[0] = v.scale;
  std::memcpy(msg.data() + 1, v.q.data(), v.q.size());
  return msg;
}

QuantizedVector unpack_quantized(std::span<const float> msg,
                                 std::size_t count) {
  D500_CHECK(msg.size() >= 1 + (count + 3) / 4);
  QuantizedVector v;
  v.scale = msg[0];
  v.q.resize(count);
  std::memcpy(v.q.data(), msg.data() + 1, count);
  return v;
}

CompressedCentralized::CompressedCentralized(
    std::unique_ptr<ThreeStepOptimizer> base, Communicator& comm,
    std::uint64_t seed)
    : DistributedOptimizer(std::move(base), comm),
      rng_(Rng(seed).fork(static_cast<std::uint64_t>(comm.rank()) + 77)) {}

TensorMap CompressedCentralized::train(const TensorMap& feeds) {
  return step_with_gradients(feeds, [&] {
    std::vector<float> grads = pack_gradients(network());
    const std::size_t n = grads.size();
    if (grad_residual_.size() != n) grad_residual_.assign(n, 0.0f);

    // Worker: error feedback + quantize + push (1/4 the gradient bytes).
    for (std::size_t i = 0; i < n; ++i) grads[i] += grad_residual_[i];
    const QuantizedVector qg = quantize_int8(grads, rng_);
    std::vector<float> sent(n);
    dequantize_int8(qg, sent);
    for (std::size_t i = 0; i < n; ++i)
      grad_residual_[i] = grads[i] - sent[i];

    const std::vector<float> msg = pack_quantized(qg);
    const std::uint64_t msg_bytes = msg.size() * sizeof(float);

    if (comm_.rank() == 0) {
      if (server_params_.empty()) server_params_ = pack_parameters(network());
      if (delta_residual_.size() != n) delta_residual_.assign(n, 0.0f);
      // Server: own contribution + receive everyone's quantized push.
      std::vector<float> sum = sent;
      std::vector<float> incoming(msg.size());
      std::vector<float> deq(n);
      for (int r = 1; r < comm_.size(); ++r) {
        comm_.recv(r, incoming, /*tag=*/900);
        dequantize_int8(unpack_quantized(incoming, n), deq);
        for (std::size_t i = 0; i < n; ++i) sum[i] += deq[i];
      }
      const float inv = 1.0f / static_cast<float>(comm_.size());
      for (auto& v : sum) v *= inv;

      // Apply the base update rule on the master copy via the network.
      unpack_gradients(network(), sum);
      unpack_parameters(network(), server_params_);
      for (const auto& [pname, gname] : network().gradients()) {
        const Tensor& g = network().fetch_tensor(gname);
        Tensor updated =
            base_->update_rule(g, network().fetch_tensor(pname), pname);
        network().feed_tensor(pname, std::move(updated));
      }
      const std::vector<float> new_params = pack_parameters(network());

      // Broadcast the quantized parameter delta (with server-side error
      // feedback), then apply it locally so every rank ends bit-identical.
      std::vector<float> delta(n);
      for (std::size_t i = 0; i < n; ++i)
        delta[i] = new_params[i] - server_params_[i] + delta_residual_[i];
      const QuantizedVector qd = quantize_int8(delta, rng_);
      std::vector<float> applied(n);
      dequantize_int8(qd, applied);
      for (std::size_t i = 0; i < n; ++i)
        delta_residual_[i] = delta[i] - applied[i];
      std::vector<float> dmsg = pack_quantized(qd);
      for (int r = 1; r < comm_.size(); ++r)
        comm_.send(r, dmsg, /*tag=*/901);
      count(msg_bytes);  // server's own push accounting symmetry

      for (std::size_t i = 0; i < n; ++i)
        server_params_[i] += applied[i];
      unpack_parameters(network(), server_params_);
    } else {
      comm_.send(0, msg, /*tag=*/900);
      count(msg_bytes);
      std::vector<float> dmsg(msg.size());
      comm_.recv(0, dmsg, /*tag=*/901);
      count(dmsg.size() * sizeof(float));
      std::vector<float> applied(n);
      dequantize_int8(unpack_quantized(dmsg, n), applied);
      std::vector<float> params = pack_parameters(network());
      for (std::size_t i = 0; i < n; ++i) params[i] += applied[i];
      unpack_parameters(network(), params);
    }
  });
}

}  // namespace d500
