#include "dist/fault.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include "core/env.hpp"
#include "core/metrics_registry.hpp"
#include "core/rng.hpp"
#include "core/trace.hpp"

namespace d500 {

namespace {

Counter& drop_counter() {
  static Counter& c = MetricsRegistry::instance().counter("fault.drops");
  return c;
}
Counter& delay_counter() {
  static Counter& c = MetricsRegistry::instance().counter("fault.delay_us");
  return c;
}
Counter& abort_counter() {
  static Counter& c = MetricsRegistry::instance().counter("fault.aborts");
  return c;
}

/// Stateless mix of the schedule seed with event coordinates; uniform in
/// [0, 1). splitmix64 gives full avalanche, so neighboring events are
/// decorrelated.
double event_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                     std::uint64_t c) {
  std::uint64_t s = seed ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b * 0xC2B2AE3D27D4EB4FULL) ^ (c * 0x165667B19E3779F9ULL);
  const std::uint64_t h = splitmix64(s);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan fault_plan_from_env() {
  FaultPlan plan;
  plan.enabled = faults_enabled_setting();  // D500_CHECKs orphan knobs
  if (!plan.enabled) return plan;
  plan.seed = fault_seed_setting();
  plan.drop_prob = fault_drop_setting();
  plan.max_retries = fault_retries_setting();
  plan.retry_timeout_us = fault_timeout_us_setting();
  plan.slow_rank = fault_slow_rank_setting();
  plan.slow_us = fault_slow_us_setting();
  plan.late_prob = fault_late_setting();
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, int world_size)
    : plan_(std::move(plan)),
      world_(world_size),
      send_seq_(static_cast<std::size_t>(world_size)) {
  D500_CHECK_MSG(world_size >= 1, "FaultInjector: world must have >= 1 rank");
  D500_CHECK_MSG(plan_.drop_prob >= 0.0 && plan_.drop_prob < 1.0,
                 "FaultInjector: drop_prob must be in [0, 1)");
  D500_CHECK_MSG(plan_.late_prob >= 0.0 && plan_.late_prob < 1.0,
                 "FaultInjector: late_prob must be in [0, 1)");
  D500_CHECK_MSG(plan_.max_retries >= 0,
                 "FaultInjector: max_retries must be >= 0");
  for (auto& s : send_seq_) s.store(0, std::memory_order_relaxed);
}

void FaultInjector::maybe_slow(int rank) {
  if (!plan_.enabled) return;
  if (rank != plan_.slow_rank || plan_.slow_us <= 0) return;
  D500_TRACE_SCOPE("fault", "straggler_delay");
  std::this_thread::sleep_for(std::chrono::microseconds(plan_.slow_us));
  delay_us_.fetch_add(static_cast<std::uint64_t>(plan_.slow_us),
                      std::memory_order_relaxed);
  delay_counter().add(static_cast<std::uint64_t>(plan_.slow_us));
}

int FaultInjector::on_send(int src, int dst, int tag, std::size_t bytes) {
  if (!plan_.enabled) return 0;
  (void)bytes;
  const std::int64_t seq = send_seq_[static_cast<std::size_t>(src)].fetch_add(
      1, std::memory_order_relaxed);

  for (const auto& [rank, nth] : plan_.abort_sends) {
    if (rank == src && nth == seq) {
      abort_counter().add(1);
      std::ostringstream os;
      os << "fault: scheduled abort of rank " << src << " at send #" << seq
         << " (dst " << dst << ", tag " << tag << ")";
      throw RankFailure(os.str());
    }
  }

  maybe_slow(src);

  if (plan_.drop_prob <= 0.0) return 0;
  // Count consecutive dropped delivery attempts; decision per attempt is a
  // pure hash, so the whole retransmission history of the message is fixed
  // by (seed, src, send index).
  int dropped = 0;
  while (dropped <= plan_.max_retries &&
         event_uniform(plan_.seed, static_cast<std::uint64_t>(src),
                       static_cast<std::uint64_t>(seq),
                       static_cast<std::uint64_t>(dropped)) < plan_.drop_prob)
    ++dropped;
  if (dropped > 0) {
    D500_TRACE_SCOPE("fault", "retry");
    drops_.fetch_add(static_cast<std::uint64_t>(dropped),
                     std::memory_order_relaxed);
    drop_counter().add(static_cast<std::uint64_t>(dropped));
    const std::uint64_t virt = static_cast<std::uint64_t>(dropped) *
                               static_cast<std::uint64_t>(plan_.retry_timeout_us);
    delay_us_.fetch_add(virt, std::memory_order_relaxed);
    delay_counter().add(virt);
  }
  if (dropped > plan_.max_retries) {
    std::ostringstream os;
    os << "fault: message from rank " << src << " to " << dst << " (tag "
       << tag << ", send #" << seq << ") dropped on the initial attempt and "
       << "all " << plan_.max_retries << " retries — undeliverable";
    throw Error(os.str());
  }
  return dropped;
}

bool FaultInjector::raw_late(int rank, std::int64_t round) const {
  if (round == 0) return false;  // no previous contribution to fall back on
  return event_uniform(plan_.seed ^ 0xEA6E'EA6E'EA6E'EA6EULL,
                       static_cast<std::uint64_t>(rank),
                       static_cast<std::uint64_t>(round), 0) < plan_.late_prob;
}

bool FaultInjector::effective_late(int rank, std::int64_t round,
                                   std::int64_t staleness_bound) {
  return staleness(rank, round, staleness_bound) > 0;
}

std::int64_t FaultInjector::staleness(int rank, std::int64_t round,
                                      std::int64_t staleness_bound) {
  if (!plan_.enabled || plan_.late_prob <= 0.0 || staleness_bound <= 0)
    return 0;
  std::lock_guard<std::mutex> lock(late_mu_);
  if (bound_seen_ < 0) bound_seen_ = staleness_bound;
  D500_CHECK_MSG(bound_seen_ == staleness_bound,
                 "FaultInjector: staleness bound changed mid-run (memo was "
                 "built for bound " << bound_seen_ << ", got "
                 << staleness_bound << ")");
  const auto key = std::make_pair(rank, round);
  auto it = streak_memo_.find(key);
  if (it != streak_memo_.end()) return it->second;
  // Walk forward from the last memoized round (rounds are small and
  // monotone in practice): a streak at the bound forces the rank on time,
  // so no observer ever reads a contribution older than `bound` rounds.
  std::int64_t from = 0, streak = 0;
  for (std::int64_t k = round - 1; k >= 1; --k) {
    auto sit = streak_memo_.find(std::make_pair(rank, k));
    if (sit != streak_memo_.end()) {
      from = k + 1;
      streak = sit->second;
      break;
    }
  }
  for (std::int64_t k = from; k <= round; ++k) {
    const bool late = raw_late(rank, k) && streak < staleness_bound;
    streak = late ? streak + 1 : 0;
    streak_memo_[std::make_pair(rank, k)] = streak;
  }
  return streak;
}

bool FaultInjector::restart_due(int rank, std::int64_t step) const {
  if (!plan_.enabled) return false;
  for (const auto& [r, s] : plan_.restarts)
    if (r == rank && s == step) return true;
  return false;
}

std::uint64_t FaultInjector::sends_seen(int rank) const {
  return static_cast<std::uint64_t>(
      send_seq_[static_cast<std::size_t>(rank)].load(
          std::memory_order_relaxed));
}

}  // namespace d500
