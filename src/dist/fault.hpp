// Fault and straggler injection for SimMPI (ROADMAP item 5; CCL-Bench's
// argument that training-infrastructure claims only hold under realistic
// communication behavior).
//
// A FaultInjector carries one deterministic, seeded schedule per SimMpi
// world. Every fault decision is a pure function of (seed, rank, per-rank
// event counter) — never of wall-clock time — so a given (seed, plan) pair
// replays the exact same fault sequence on every run and at every thread
// count. The injected behaviors:
//
//   * rank slowdown — a scheduled straggler rank sleeps a fixed real delay
//     before each send (and each eager-collective deposit), perturbing
//     timing without ever changing data;
//   * delayed/dropped messages — each point-to-point delivery attempt may
//     be dropped (per-attempt hash); the sender retries up to a bound,
//     each failed attempt charging full wire bytes plus one virtual
//     retry-timeout, and throws once the bound is exhausted;
//   * scheduled sender aborts — the nth send of a rank throws RankFailure
//     mid-collective (rank-restart tests recover via checkpoints and
//     SimMpi::clear_mailboxes);
//   * eager lateness — per-(rank, round) schedule deciding whose
//     contribution an eager collective substitutes with the previous
//     round's value, with the consecutive-lateness streak clamped to the
//     staleness bound (dist/eager.hpp).
//
// The disabled injector is the universal no-op path: every SimMpi routes
// all sends through it unconditionally, and with `enabled == false` each
// hook is a single branch — so the straggler-free collectives exercise the
// exact code path the fault build uses, and the synchronous suite stays
// bit-identical with the injector compiled in but disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "core/error.hpp"

namespace d500 {

/// Thrown by a scheduled sender abort: the simulated process crash of a
/// rank mid-collective. Distinct from Error so recovery harnesses can
/// catch exactly the injected failure and restart from a checkpoint.
class RankFailure : public Error {
 public:
  explicit RankFailure(const std::string& what) : Error(what) {}
};

/// One deterministic fault schedule (see fault_plan_from_env for the
/// D500_FAULT_* env encoding).
struct FaultPlan {
  bool enabled = false;
  std::uint64_t seed = 0;

  /// Per-delivery-attempt drop probability for point-to-point messages.
  double drop_prob = 0.0;
  /// Retries after the initial attempt before a send throws.
  int max_retries = 3;
  /// Virtual timeout charged per failed attempt (accumulated in the
  /// injected-delay counter; not slept).
  std::int64_t retry_timeout_us = 50;

  /// Straggler: `slow_rank` sleeps `slow_us` (real) before every send.
  int slow_rank = -1;
  std::int64_t slow_us = 0;

  /// Eager collectives: per-(rank, round) lateness probability.
  double late_prob = 0.0;

  /// Scheduled sender aborts: rank r's nth send (0-based, counted per
  /// rank) throws RankFailure instead of delivering.
  std::vector<std::pair<int, std::int64_t>> abort_sends;

  /// Scheduled rank restarts at step granularity: restart_due(rank, step)
  /// is true exactly for these pairs (training harnesses restore the rank
  /// from its last checkpoint when it fires).
  std::vector<std::pair<int, std::int64_t>> restarts;
};

/// Builds the plan the environment requests: disabled (all-no-op) when
/// D500_FAULTS is unset — in which case any D500_FAULT_* knob D500_CHECKs
/// loudly — else populated from the D500_FAULT_* knobs.
FaultPlan fault_plan_from_env();

/// Deterministic per-world fault injector. Thread-safe: ranks call in
/// parallel; the per-rank event counters are the only mutable state and
/// each is atomic.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, int world_size);

  bool enabled() const { return plan_.enabled; }
  const FaultPlan& plan() const { return plan_; }

  /// Point-to-point send hook. Sleeps the straggler delay when `src` is
  /// the scheduled slow rank, throws RankFailure on a scheduled abort, and
  /// returns the number of dropped delivery attempts for this message
  /// (deterministic in (seed, src, per-src send index)). Throws Error when
  /// the drop count exhausts the retry bound. Disabled: returns 0 after
  /// one branch.
  int on_send(int src, int dst, int tag, std::size_t bytes);

  /// Straggler delay hook for non-p2p paths (nonblocking-collective
  /// launches, eager deposits). Sleeps when `rank` is the slow rank.
  void maybe_slow(int rank);

  /// Eager-collective lateness: true when rank `rank`'s contribution to
  /// round `round` is scheduled late AND its consecutive-lateness streak
  /// stays within `staleness_bound` (a streak at the bound forces the rank
  /// on time, so staleness never exceeds the bound). Pure in
  /// (seed, rank, round, bound); memoized internally.
  bool effective_late(int rank, std::int64_t round,
                      std::int64_t staleness_bound);

  /// Consecutive-lateness streak of `rank` after round `round` — the age,
  /// in rounds, of the contribution an eager collective reads for that
  /// rank (0 = on time; never exceeds `staleness_bound`). The memo assumes
  /// one bound per injector: mixing bounds on the same instance
  /// D500_CHECKs.
  std::int64_t staleness(int rank, std::int64_t round,
                         std::int64_t staleness_bound);

  /// True when the plan schedules a restart of `rank` at `step`.
  bool restart_due(int rank, std::int64_t step) const;

  // Totals across the world (for tests, benches, and metrics).
  std::uint64_t drops() const { return drops_.load(); }
  std::uint64_t retries_charged() const { return drops(); }
  std::uint64_t delay_us_injected() const { return delay_us_.load(); }
  std::uint64_t sends_seen(int rank) const;

 private:
  bool raw_late(int rank, std::int64_t round) const;

  FaultPlan plan_;
  int world_;
  std::vector<std::atomic<std::int64_t>> send_seq_;  // per-rank send index
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> delay_us_{0};

  // Lateness-streak memo: (rank, round) -> streak after that round. The
  // recurrence streak(r, k) = raw_late(r, k) && streak(r, k-1) < bound
  //                           ? streak(r, k-1) + 1 : 0
  // clamps at the bound; memoized so every observer sees one consistent
  // answer.
  std::mutex late_mu_;
  std::int64_t bound_seen_ = -1;
  std::map<std::pair<int, std::int64_t>, std::int64_t> streak_memo_;
};

}  // namespace d500
