#include "dist/simmpi.hpp"

#include <algorithm>
#include <thread>

#include "core/metrics_registry.hpp"
#include "core/threadpool.hpp"
#include "core/trace.hpp"

namespace d500 {

namespace {

/// Shared latency histogram for every blocking collective; the wire-volume
/// counter pairs with the per-rank trace curve.
Histogram& collective_hist() {
  static Histogram& h =
      MetricsRegistry::instance().histogram("mpi.collective_ns");
  return h;
}

Counter& wire_bytes_counter() {
  static Counter& c = MetricsRegistry::instance().counter("mpi.wire_bytes");
  return c;
}

/// Chunk boundaries of the ring allreduce (n nearly-equal chunks of a
/// `len`-element vector) — shared by the blocking algorithm and the
/// ring-equivalent accounting/reduction of the nonblocking path.
std::size_t ring_chunk_begin(std::size_t len, int n, int c) {
  return len * static_cast<std::size_t>(c) / static_cast<std::size_t>(n);
}
std::size_t ring_chunk_size(std::size_t len, int n, int c) {
  return ring_chunk_begin(len, n, c + 1) - ring_chunk_begin(len, n, c);
}

/// Bytes rank `r` sends in a blocking ring allreduce of `len` floats:
/// n-1 reduce-scatter chunks then n-1 allgather chunks.
std::uint64_t ring_send_bytes(int r, int n, std::size_t len) {
  std::uint64_t bytes = 0;
  for (int s = 0; s < n - 1; ++s) {
    bytes += ring_chunk_size(len, n, ((r - s) % n + n) % n);
    bytes += ring_chunk_size(len, n, ((r + 1 - s) % n + n) % n);
  }
  return bytes * sizeof(float);
}

}  // namespace

SimMpi::SimMpi(int size)
    : size_(size),
      mailboxes_(static_cast<std::size_t>(size)),
      bytes_sent_(static_cast<std::size_t>(size), 0),
      msgs_sent_(static_cast<std::size_t>(size), 0),
      injector_(std::make_unique<FaultInjector>(fault_plan_from_env(), size)) {
  D500_CHECK_MSG(size >= 1, "SimMpi world must have >= 1 rank");
}

void SimMpi::set_fault_plan(FaultPlan plan) {
  injector_ = std::make_unique<FaultInjector>(std::move(plan), size_);
}

void SimMpi::clear_mailboxes() {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queues.clear();
  }
  std::lock_guard<std::mutex> lock(coll_mu_);
  pending_colls_.clear();
}

void SimMpi::run(const std::function<void(Communicator&)>& fn) {
  revoked_.store(false, std::memory_order_relaxed);
  {
    // A revoked barrier may have left a partial count behind.
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_count_ = 0;
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      Communicator comm(this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        revoke();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Revocation makes the surviving ranks throw secondary RankFailures, so
  // the root cause is the first error that is NOT one — unless the fault
  // really was a scheduled RankFailure, in which case every capture is one
  // and the first (by rank order) is rethrown.
  for (const auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const RankFailure&) {
    } catch (...) {
      throw;
    }
  }
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

void SimMpi::revoke() {
  revoked_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

std::uint64_t SimMpi::bytes_sent(int rank) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return bytes_sent_[static_cast<std::size_t>(rank)];
}

std::uint64_t SimMpi::total_bytes_sent() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::uint64_t total = 0;
  for (auto b : bytes_sent_) total += b;
  return total;
}

std::uint64_t SimMpi::messages_sent(int rank) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return msgs_sent_[static_cast<std::size_t>(rank)];
}

void SimMpi::reset_counters() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::fill(bytes_sent_.begin(), bytes_sent_.end(), 0);
  std::fill(msgs_sent_.begin(), msgs_sent_.end(), 0);
}

void SimMpi::post(int src, int dst, int tag, std::vector<float> data) {
  // Every delivery routes through the injector — disabled, on_send is a
  // single branch, so the straggler-free path and the fault build share
  // one code path. A dropped attempt went on the wire before it was lost:
  // each one charges full message bytes, and delivery happens on the first
  // surviving attempt (on_send throws past the retry bound).
  int dropped = 0;
  try {
    dropped = injector_->on_send(src, dst, tag, data.size() * sizeof(float));
  } catch (const RankFailure&) {
    throw;  // scheduled abort: the rank dies before anything hits the wire
  } catch (const Error&) {
    // Undeliverable: the initial attempt and every retry went on the wire
    // and were lost — charge them all, then propagate.
    const auto tries =
        static_cast<std::uint64_t>(injector_->plan().max_retries) + 1;
    charge(src, tries * data.size() * sizeof(float), tries);
    throw;
  }
  const auto attempts = static_cast<std::uint64_t>(dropped) + 1;
  charge(src, attempts * data.size() * sizeof(float), attempts);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queues[{src, tag}].push_back(Message{std::move(data)});
  }
  box.cv.notify_all();
}

void SimMpi::charge(int rank, std::uint64_t bytes, std::uint64_t msgs) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    bytes_sent_[static_cast<std::size_t>(rank)] += bytes;
    msgs_sent_[static_cast<std::size_t>(rank)] += msgs;
    // Per-rank cumulative send volume; each rank thread emits into its own
    // ring, so the counter tracks that rank's curve.
    trace_counter(
        "dist", "bytes_sent",
        static_cast<double>(bytes_sent_[static_cast<std::size_t>(rank)]));
  }
  wire_bytes_counter().add(bytes);
}

void SimMpi::set_completion_scheduler(
    std::function<void(std::function<void()>)> s) {
  std::lock_guard<std::mutex> lock(coll_mu_);
  completion_scheduler_ = std::move(s);
}

std::shared_ptr<SimMpi::CollectiveOp> SimMpi::join_collective(
    int rank, int tag, std::uint64_t seq, std::span<float> data) {
  std::shared_ptr<CollectiveOp> op;
  std::function<void(std::function<void()>)> scheduler;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(coll_mu_);
    auto key = std::make_pair(tag, seq);
    auto it = pending_colls_.find(key);
    if (it == pending_colls_.end()) {
      op = std::make_shared<CollectiveOp>();
      op->expected = size_;
      op->len = data.size();
      op->bufs.resize(static_cast<std::size_t>(size_));
      pending_colls_.emplace(key, op);
    } else {
      op = it->second;
      D500_CHECK_MSG(data.size() == op->len,
                     "iallreduce: buffer size mismatch across ranks (got "
                         << data.size() << ", want " << op->len << ")");
    }
    op->bufs[static_cast<std::size_t>(rank)] = data;
    if (++op->arrived == op->expected) {
      pending_colls_.erase(key);
      last = true;
      scheduler = completion_scheduler_;
    }
  }
  if (last) {
    auto task = [op] {
      complete_allreduce(*op);
      op->done.store(true, std::memory_order_release);
      ThreadPool::instance().notify();
    };
    if (scheduler) {
      scheduler(std::move(task));
    } else {
      ThreadPool::instance().enqueue(std::move(task));
    }
  }
  return op;
}

void SimMpi::complete_allreduce(CollectiveOp& op) {
  D500_TRACE_SCOPE("dist", "iallreduce_complete");
  const int n = op.expected;
  const std::size_t len = op.len;
  if (n == 1 || len == 0) {
    return;
  }
  std::vector<float> acc(len);
  // Per ring chunk c, fold contributions in cyclic order starting at rank
  // c — the summation order chunk c experiences in allreduce_sum_ring
  // (it originates at rank c and accumulates while travelling the ring).
  for (int c = 0; c < n; ++c) {
    const std::size_t lo = ring_chunk_begin(len, n, c);
    const std::size_t sz = ring_chunk_size(len, n, c);
    float* a = acc.data() + lo;
    std::copy_n(op.bufs[static_cast<std::size_t>(c)].data() + lo, sz, a);
    for (int s = 1; s < n; ++s) {
      const float* src =
          op.bufs[static_cast<std::size_t>((c + s) % n)].data() + lo;
      for (std::size_t i = 0; i < sz; ++i) a[i] += src[i];
    }
  }
  for (int r = 0; r < n; ++r)
    std::copy(acc.begin(), acc.end(), op.bufs[static_cast<std::size_t>(r)].begin());
}

SimMpi::Message SimMpi::take(int src, int dst, int tag) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  auto key = std::make_pair(src, tag);
  auto ready = [&] {
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  };
  box.cv.wait(lock, [&] {
    return ready() || revoked_.load(std::memory_order_acquire);
  });
  // Queued messages stay consumable after revocation; only an empty wait
  // aborts (the peer that should have sent is gone).
  if (!ready())
    throw RankFailure("SimMpi: communicator revoked — a peer rank failed");
  auto& q = box.queues[key];
  Message m = std::move(q.front());
  q.pop_front();
  return m;
}

std::pair<int, SimMpi::Message> SimMpi::take_any(int dst, int tag) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  // The queue map is ordered by (src, tag), so the linear scan naturally
  // yields the lowest waiting source first — a deterministic tie-break.
  auto find_ready = [&]() -> decltype(box.queues.begin()) {
    for (auto it = box.queues.begin(); it != box.queues.end(); ++it)
      if (it->first.second == tag && !it->second.empty()) return it;
    return box.queues.end();
  };
  decltype(box.queues.begin()) ready;
  box.cv.wait(lock, [&] {
    return (ready = find_ready()) != box.queues.end() ||
           revoked_.load(std::memory_order_acquire);
  });
  if ((ready = find_ready()) == box.queues.end())
    throw RankFailure("SimMpi: communicator revoked — a peer rank failed");
  Message m = std::move(ready->second.front());
  ready->second.pop_front();
  return {ready->first.first, std::move(m)};
}

void Communicator::send(int dst, std::span<const float> data, int tag) {
  D500_CHECK_MSG(dst >= 0 && dst < size() && dst != rank_,
                 "send: bad destination " << dst);
  world_->post(rank_, dst, tag, std::vector<float>(data.begin(), data.end()));
}

void Communicator::recv(int src, std::span<float> out, int tag) {
  D500_CHECK_MSG(src >= 0 && src < size() && src != rank_,
                 "recv: bad source " << src);
  const SimMpi::Message m = world_->take(src, rank_, tag);
  D500_CHECK_MSG(m.data.size() == out.size(),
                 "recv: size mismatch (got " << m.data.size() << ", want "
                 << out.size() << ")");
  std::copy(m.data.begin(), m.data.end(), out.begin());
}

std::pair<int, std::vector<float>> Communicator::recv_any(int tag) {
  auto [src, m] = world_->take_any(rank_, tag);
  return {src, std::move(m.data)};
}

void Communicator::barrier() {
  std::unique_lock<std::mutex> lock(world_->barrier_mu_);
  const std::uint64_t gen = world_->barrier_generation_;
  if (++world_->barrier_count_ == world_->size_) {
    world_->barrier_count_ = 0;
    ++world_->barrier_generation_;
    world_->barrier_cv_.notify_all();
  } else {
    world_->barrier_cv_.wait(lock, [&] {
      return world_->barrier_generation_ != gen ||
             world_->revoked_.load(std::memory_order_acquire);
    });
    if (world_->barrier_generation_ == gen)
      throw RankFailure("SimMpi: communicator revoked — a peer rank failed");
  }
}

void Communicator::bcast(std::span<float> data, int root) {
  LatencyScope lat(collective_hist());
  D500_TRACE_SCOPE("dist", "bcast");
  // Binomial tree rooted at `root`: virtual rank v = (rank - root) mod n.
  // v receives from v - lsb(v), then forwards to v + m for each mask m
  // below its own lowest set bit (the whole range below n for the root).
  const int n = size();
  if (n == 1) return;
  const int v = (rank_ - root + n) % n;
  int start_mask;
  if (v != 0) {
    const int lsb = v & -v;
    recv((v - lsb + root) % n, data, /*tag=*/100);
    start_mask = lsb >> 1;
  } else {
    start_mask = 1;
    while (start_mask * 2 < n) start_mask <<= 1;
  }
  for (int m = start_mask; m >= 1; m >>= 1)
    if (v + m < n) send((v + m + root) % n, data, /*tag=*/100);
}

void Communicator::reduce_sum(std::span<float> data, int root) {
  LatencyScope lat(collective_hist());
  D500_TRACE_SCOPE("dist", "reduce");
  // Binomial-tree reduce: virtual rank v = (rank - root) mod n.
  const int n = size();
  if (n == 1) return;
  const int v = (rank_ - root + n) % n;
  std::vector<float> incoming(data.size());
  for (int m = 1; m < n; m <<= 1) {
    if (v & m) {
      send(((v & ~m) + root) % n, data, /*tag=*/101);
      return;  // sent up; done
    }
    if (v + m < n) {
      recv((v + m + root) % n, incoming, /*tag=*/101);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += incoming[i];
    }
  }
}

void Communicator::allreduce_sum_ring(std::span<float> data) {
  LatencyScope lat(collective_hist());
  D500_TRACE_SCOPE("dist", "allreduce_ring");
  const int n = size();
  if (n == 1) return;
  const std::size_t len = data.size();
  // Chunk boundaries (n chunks, nearly equal).
  auto chunk_begin = [&](int c) { return len * static_cast<std::size_t>(c) / n; };
  auto chunk_size = [&](int c) {
    return chunk_begin(c + 1) - chunk_begin(c);
  };
  const int right = (rank_ + 1) % n;
  const int left = (rank_ - 1 + n) % n;
  std::vector<float> buf(len);  // staging

  // Reduce-scatter: n-1 steps; in step s, send chunk (rank - s) and
  // receive+accumulate chunk (rank - s - 1).
  for (int s = 0; s < n - 1; ++s) {
    const int send_c = ((rank_ - s) % n + n) % n;
    const int recv_c = ((rank_ - s - 1) % n + n) % n;
    send(right, data.subspan(chunk_begin(send_c), chunk_size(send_c)),
         /*tag=*/200 + s);
    std::span<float> stage(buf.data(), chunk_size(recv_c));
    recv(left, stage, /*tag=*/200 + s);
    float* dst = data.data() + chunk_begin(recv_c);
    for (std::size_t i = 0; i < stage.size(); ++i) dst[i] += stage[i];
  }
  // Allgather: n-1 steps circulating the reduced chunks.
  for (int s = 0; s < n - 1; ++s) {
    const int send_c = ((rank_ + 1 - s) % n + n) % n;
    const int recv_c = ((rank_ - s) % n + n) % n;
    send(right, data.subspan(chunk_begin(send_c), chunk_size(send_c)),
         /*tag=*/300 + s);
    std::span<float> stage(data.data() + chunk_begin(recv_c),
                           chunk_size(recv_c));
    recv(left, stage, /*tag=*/300 + s);
  }
}

void Communicator::allreduce_sum_rd(std::span<float> data) {
  LatencyScope lat(collective_hist());
  D500_TRACE_SCOPE("dist", "allreduce_rd");
  const int n = size();
  if (n == 1) return;
  // Largest power of two <= n.
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;
  std::vector<float> incoming(data.size());

  // Fold excess ranks into the power-of-two set.
  int newrank;
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {  // even: send to odd neighbor, then idle
      send(rank_ + 1, data, /*tag=*/400);
      newrank = -1;
    } else {
      recv(rank_ - 1, incoming, /*tag=*/400);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += incoming[i];
      newrank = rank_ / 2;
    }
  } else {
    newrank = rank_ - rem;
  }

  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int peer_new = newrank ^ mask;
      const int peer =
          peer_new < rem ? peer_new * 2 + 1 : peer_new + rem;
      // Exchange full vectors (send first from the lower rank to avoid
      // deadlock is unnecessary: queues are buffered/nonblocking sends).
      send(peer, data, /*tag=*/401 + mask);
      recv(peer, incoming, /*tag=*/401 + mask);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += incoming[i];
    }
  }

  // Unfold: odd ranks of the folded pairs send results back to evens.
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      send(rank_ - 1, data, /*tag=*/402);
    } else {
      recv(rank_ + 1, data, /*tag=*/402);
    }
  }
}

void Communicator::allgather(std::span<const float> chunk,
                             std::span<float> out) {
  LatencyScope lat(collective_hist());
  D500_TRACE_SCOPE("dist", "allgather");
  const int n = size();
  const std::size_t csize = chunk.size();
  D500_CHECK_MSG(out.size() == csize * static_cast<std::size_t>(n),
                 "allgather: output size mismatch");
  std::copy(chunk.begin(), chunk.end(),
            out.begin() + static_cast<std::ptrdiff_t>(csize * rank_));
  if (n == 1) return;
  const int right = (rank_ + 1) % n;
  const int left = (rank_ - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int send_c = ((rank_ - s) % n + n) % n;
    const int recv_c = ((rank_ - s - 1) % n + n) % n;
    send(right, out.subspan(csize * static_cast<std::size_t>(send_c), csize),
         /*tag=*/500 + s);
    recv(left, out.subspan(csize * static_cast<std::size_t>(recv_c), csize),
         /*tag=*/500 + s);
  }
}

AllreduceRequest Communicator::iallreduce_sum(std::span<float> data, int tag) {
  D500_TRACE_SCOPE("dist", "iallreduce_launch");
  // The nonblocking path moves no real point-to-point messages, so drops
  // cannot apply; a scheduled straggler still pays its delay at launch.
  world_->injector_->maybe_slow(rank_);
  const std::uint64_t seq = coll_seq_[tag]++;
  AllreduceRequest req;
  req.op_ = world_->join_collective(rank_, tag, seq, data);
  // Charge exactly what the blocking ring algorithm would send from this
  // rank, so volume metrics are algorithm-equivalent across both paths.
  const int n = size();
  if (n > 1)
    world_->charge(rank_, ring_send_bytes(rank_, n, data.size()),
                   2 * static_cast<std::uint64_t>(n - 1));
  return req;
}

void Communicator::wait(AllreduceRequest& req) {
  if (!req.op_) return;
  D500_TRACE_SCOPE("dist", "overlap_wait");
  auto op = req.op_;
  // Work the shared pool queue while waiting: on a worker-less pool (1
  // thread) this is what actually runs the completion task, and on a busy
  // pool it turns wait time into useful compute.
  ThreadPool::instance().help_while(
      [&op] { return op->done.load(std::memory_order_acquire); });
  req.op_.reset();
}

bool Communicator::test(const AllreduceRequest& req) const {
  return req.op_ == nullptr ||
         req.op_->done.load(std::memory_order_acquire);
}

}  // namespace d500
