#include "dist/sparcml.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "core/trace.hpp"
#include "frameworks/plan_executor.hpp"

namespace d500 {

SparseVector sparsify_topk(std::span<const float> dense, std::int64_t k) {
  SparseVector out;
  out.dense_size = static_cast<std::int64_t>(dense.size());
  k = std::min<std::int64_t>(k, out.dense_size);
  if (k <= 0) return out;

  std::vector<std::uint32_t> idx(dense.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::nth_element(idx.begin(), idx.begin() + (k - 1), idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return std::abs(dense[a]) > std::abs(dense[b]);
                   });
  idx.resize(static_cast<std::size_t>(k));
  std::sort(idx.begin(), idx.end());
  out.indices = std::move(idx);
  out.values.reserve(out.indices.size());
  for (auto i : out.indices) out.values.push_back(dense[i]);
  return out;
}

SparseVector sparse_add(const SparseVector& a, const SparseVector& b) {
  D500_CHECK(a.dense_size == b.dense_size);
  SparseVector out;
  out.dense_size = a.dense_size;
  out.indices.reserve(a.indices.size() + b.indices.size());
  out.values.reserve(a.indices.size() + b.indices.size());
  std::size_t i = 0, j = 0;
  while (i < a.indices.size() || j < b.indices.size()) {
    if (j >= b.indices.size() ||
        (i < a.indices.size() && a.indices[i] < b.indices[j])) {
      out.indices.push_back(a.indices[i]);
      out.values.push_back(a.values[i]);
      ++i;
    } else if (i >= a.indices.size() || b.indices[j] < a.indices[i]) {
      out.indices.push_back(b.indices[j]);
      out.values.push_back(b.values[j]);
      ++j;
    } else {
      out.indices.push_back(a.indices[i]);
      out.values.push_back(a.values[i] + b.values[j]);
      ++i;
      ++j;
    }
  }
  return out;
}

void densify(const SparseVector& v, std::span<float> out) {
  D500_CHECK(static_cast<std::int64_t>(out.size()) == v.dense_size);
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t k = 0; k < v.indices.size(); ++k)
    out[v.indices[k]] = v.values[k];
}

namespace {

/// Sparse vectors travel through the float-only Communicator as
/// [nnz, bit-cast indices..., values...]; index bit patterns survive the
/// copy-based transport exactly.
std::vector<float> encode_sparse(const SparseVector& v) {
  std::vector<float> msg(1 + 2 * v.indices.size());
  const auto nnz = static_cast<std::uint32_t>(v.indices.size());
  std::memcpy(msg.data(), &nnz, sizeof(nnz));
  if (nnz > 0) {
    std::memcpy(msg.data() + 1, v.indices.data(),
                nnz * sizeof(std::uint32_t));
    std::memcpy(msg.data() + 1 + nnz, v.values.data(), nnz * sizeof(float));
  }
  return msg;
}

SparseVector decode_sparse(std::span<const float> msg,
                           std::int64_t dense_size) {
  SparseVector v;
  v.dense_size = dense_size;
  std::uint32_t nnz = 0;
  D500_CHECK(!msg.empty());
  std::memcpy(&nnz, msg.data(), sizeof(nnz));
  D500_CHECK(msg.size() >= 1 + 2 * static_cast<std::size_t>(nnz));
  v.indices.resize(nnz);
  v.values.resize(nnz);
  if (nnz > 0) {
    std::memcpy(v.indices.data(), msg.data() + 1, nnz * sizeof(std::uint32_t));
    std::memcpy(v.values.data(), msg.data() + 1 + nnz, nnz * sizeof(float));
  }
  return v;
}

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

SparseAllreduceStats sparse_allreduce(Communicator& comm,
                                      const SparseVector& contribution,
                                      std::span<float> dense_out,
                                      double dense_switch_threshold) {
  const int n = comm.size();
  D500_CHECK_MSG(is_power_of_two(n),
                 "sparse_allreduce requires power-of-two world, got " << n);
  SparseAllreduceStats stats;
  D500_TRACE_SCOPE("dist", "sparse_allreduce");
  SparseVector acc = contribution;
  bool dense_mode = false;

  for (int mask = 1; mask < n; mask <<= 1) {
    const int peer = comm.rank() ^ mask;
    if (!dense_mode && acc.density() > dense_switch_threshold) {
      // Switch: densify once; remaining rounds use dense exchanges.
      densify(acc, dense_out);
      dense_mode = true;
      stats.switched_to_dense = true;
    }
    if (dense_mode) {
      // Dense exchange round (pairwise recursive doubling).
      std::vector<float> incoming(dense_out.size());
      comm.send(peer, dense_out, /*tag=*/700 + mask);
      comm.recv(peer, incoming, /*tag=*/700 + mask);
      stats.bytes_sent += dense_out.size() * sizeof(float);
      for (std::size_t i = 0; i < dense_out.size(); ++i)
        dense_out[i] += incoming[i];
    } else {
      const std::vector<float> msg = encode_sparse(acc);
      comm.send(peer, msg, /*tag=*/700 + mask);
      stats.bytes_sent += acc.wire_bytes();
      // Peer message can be any size; exchange sizes first via a 1-float
      // header message.
      std::vector<float> size_msg(1);
      const float my_len = static_cast<float>(msg.size());
      comm.send(peer, std::span<const float>(&my_len, 1), /*tag=*/800 + mask);
      comm.recv(peer, size_msg, /*tag=*/800 + mask);
      std::vector<float> incoming(static_cast<std::size_t>(size_msg[0]));
      comm.recv(peer, incoming, /*tag=*/700 + mask);
      acc = sparse_add(acc, decode_sparse(incoming, acc.dense_size));
    }
  }
  if (!dense_mode) densify(acc, dense_out);
  stats.final_density = dense_mode ? 1.0 : acc.density();
  trace_counter("dist", "density", stats.final_density);
  return stats;
}

SparCMLOptimizer::SparCMLOptimizer(std::unique_ptr<ThreeStepOptimizer> base,
                                   Communicator& comm, double density,
                                   double dense_switch_threshold)
    : DistributedOptimizer(std::move(base), comm), density_(density),
      switch_threshold_(dense_switch_threshold) {}

TensorMap SparCMLOptimizer::train(const TensorMap& feeds) {
  // Lay out the packed gradient vector (declaration order, matching
  // pack_gradients) once.
  if (pack_offset_.empty()) {
    std::size_t off = 0;
    for (const auto& [pname, gname] : network().gradients()) {
      pack_offset_[pname] = off;
      off += static_cast<std::size_t>(network().fetch_tensor(pname).elements());
    }
    packed_.assign(off, 0.0f);
    residual_.assign(off, 0.0f);
  }

  // Overlap path: fuse the residual re-add into the per-gradient pack and
  // run it from the executor's grad-ready hook, element-for-element the
  // same arithmetic as the batch loop below.
  auto* plan = dynamic_cast<PlanExecutor*>(&executor());
  const bool overlap = plan != nullptr && plan->options().overlap_comm;
  if (overlap) {
    plan->set_grad_ready_hook([this](const std::string& pname,
                                     const Tensor& g) {
      auto it = pack_offset_.find(pname);
      if (it == pack_offset_.end()) return;
      D500_TRACE_SCOPE("dist", "sparse_pack");
      const float* src = g.data();
      float* dst = packed_.data() + it->second;
      const float* res = residual_.data() + it->second;
      for (std::int64_t i = 0; i < g.elements(); ++i) dst[i] = src[i] + res[i];
      ++hook_packs_;
    });
  }

  return step_with_gradients(feeds, [&] {
    if (overlap) {
      plan->set_grad_ready_hook(nullptr);
    } else {
      // Residual feedback: re-add the mass dropped by earlier
      // sparsifications before selecting this step's top-k.
      std::size_t off = 0;
      for (const auto& [pname, gname] : network().gradients()) {
        const Tensor& g = network().fetch_tensor(gname);
        for (std::int64_t i = 0; i < g.elements(); ++i)
          packed_[off + static_cast<std::size_t>(i)] =
              g.data()[i] + residual_[off + static_cast<std::size_t>(i)];
        off += static_cast<std::size_t>(g.elements());
      }
    }
    std::vector<float>& grads = packed_;

    const auto k = static_cast<std::int64_t>(
        density_ * static_cast<double>(grads.size()));
    const SparseVector sparse = sparsify_topk(grads, std::max<std::int64_t>(k, 1));

    // Residual = what top-k dropped.
    std::vector<float> kept(grads.size(), 0.0f);
    densify(sparse, kept);
    for (std::size_t i = 0; i < grads.size(); ++i)
      residual_[i] = grads[i] - kept[i];

    std::vector<float> summed(grads.size(), 0.0f);
    const auto stats =
        sparse_allreduce(comm_, sparse, summed, switch_threshold_);
    app_bytes_ += stats.bytes_sent;
    ++comm_calls_;
    last_density_ = stats.final_density;

    const float inv_n = 1.0f / static_cast<float>(comm_.size());
    for (auto& v : summed) v *= inv_n;
    unpack_gradients(network(), summed);
    for (const auto& [pname, gname] : network().gradients()) {
      const Tensor& g = network().fetch_tensor(gname);
      Tensor updated =
          base_->update_rule(g, network().fetch_tensor(pname), pname);
      network().feed_tensor(pname, std::move(updated));
    }
  });
}

}  // namespace d500
