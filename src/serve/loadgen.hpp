// Open-loop Poisson load generator for SessionPool SLO benchmarks.
//
// Open-loop means arrival times are scheduled up front from the target rate
// and never react to completions: when the server falls behind, requests
// queue and their measured latency grows, instead of the generator slowing
// down and hiding the backlog. Latency is measured from each request's
// *scheduled* arrival to its completion, so generator scheduling jitter
// inflates the numbers rather than masking queueing delay (the
// coordinated-omission-free convention).
#pragma once

#include <cstdint>
#include <vector>

#include "serve/pool.hpp"

namespace d500::serve {

struct LoadGenOptions {
  std::int64_t requests = 1000;
  double rate_rps = 1000.0;      // mean Poisson arrival rate
  std::uint64_t seed = 0x5eed;   // inter-arrival stream (deterministic)
};

struct LoadGenResult {
  std::int64_t completed = 0;
  double duration_s = 0.0;        // first scheduled arrival -> last done
  double throughput_rps = 0.0;    // completed / duration_s
  std::vector<double> latency_s;  // per request: scheduled arrival -> done
};

/// Drives `pool` (already start()ed) with `opts.requests` arrivals at
/// exponential inter-arrival gaps, cycling request payloads through the
/// `nsamples` rows of `samples` (each pool.input_elems() floats). After the
/// last submit the pool is shut down — the drain guarantee completes every
/// accepted request — and all replies are awaited. The pool is NOT
/// restartable afterwards; benches build a fresh pool per trial.
LoadGenResult run_open_loop(SessionPool& pool, const LoadGenOptions& opts,
                            const float* samples, std::int64_t nsamples);

}  // namespace d500::serve
