#include "serve/loadgen.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace d500::serve {

LoadGenResult run_open_loop(SessionPool& pool, const LoadGenOptions& opts,
                            const float* samples, std::int64_t nsamples) {
  D500_CHECK_MSG(opts.requests > 0 && opts.rate_rps > 0.0 && nsamples > 0,
                 "serve: loadgen needs positive requests/rate/samples");
  const std::int64_t n = opts.requests;
  const std::int64_t in_elems = pool.input_elems();
  const std::int64_t out_elems = pool.output_elems();

  // Pre-draw the whole arrival schedule (exponential gaps) and preallocate
  // every request + reply buffer so the submit loop does no work that could
  // distort the schedule.
  Rng rng(opts.seed);
  std::vector<std::int64_t> scheduled(static_cast<std::size_t>(n));
  const double mean_gap_ns = 1e9 / opts.rate_rps;
  std::vector<SessionPool::Request> reqs(static_cast<std::size_t>(n));
  std::vector<float> replies(static_cast<std::size_t>(n * out_elems));

  const std::int64_t t0 = serve_now_ns() + 1000000;  // 1 ms lead-in
  std::int64_t t = t0;
  for (std::int64_t i = 0; i < n; ++i) {
    double u = 0.0;
    do { u = rng.uniform(); } while (u <= 1e-12);
    t += static_cast<std::int64_t>(-std::log(u) * mean_gap_ns);
    scheduled[static_cast<std::size_t>(i)] = t;
    reqs[static_cast<std::size_t>(i)].input =
        samples + (i % nsamples) * in_elems;
    reqs[static_cast<std::size_t>(i)].output =
        replies.data() + i * out_elems;
  }

  for (std::int64_t i = 0; i < n; ++i) {
    // Hold each submit to its scheduled instant: coarse sleep until close,
    // then a yielding spin for the remainder. Plain sleep_for overshoots
    // by scheduler quanta (thinning the offered load); a hard spin would
    // starve the pool workers on low-core hosts — yield() keeps the
    // schedule tight while letting workers drain during the wait.
    const std::int64_t due = scheduled[static_cast<std::size_t>(i)];
    const std::int64_t now = serve_now_ns();
    if (due - now > 200000)
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(due - now - 100000));
    while (serve_now_ns() < due) std::this_thread::yield();
    const bool ok = pool.submit(&reqs[static_cast<std::size_t>(i)]);
    D500_CHECK_MSG(ok, "serve: pool rejected request " << i);
  }

  // Drain: close the queue so partial batches flush (the fixed policy's
  // tail would otherwise wait forever), then collect every reply.
  pool.shutdown();

  LoadGenResult res;
  res.latency_s.reserve(static_cast<std::size_t>(n));
  std::int64_t last_done = t0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& r = reqs[static_cast<std::size_t>(i)];
    pool.wait(r);
    res.latency_s.push_back(
        static_cast<double>(r.done_ns - scheduled[static_cast<std::size_t>(i)]) *
        1e-9);
    last_done = std::max(last_done, r.done_ns);
  }
  res.completed = n;
  res.duration_s = static_cast<double>(last_done - scheduled.front()) * 1e-9;
  res.throughput_rps =
      res.duration_s > 0.0 ? static_cast<double>(n) / res.duration_s : 0.0;
  return res;
}

}  // namespace d500::serve
