// InferenceSession: a forward-only serving wrapper around PlanExecutor
// with a shape-bucketed plan cache.
//
// The training stack compiles one plan per feed signature, so a serving
// tier that batched requests naively would recompile (slot tables, memory
// plan, weight panels) every time the coalesced batch size changed — and
// the first request at each new size would pay the full compile. The
// session instead precompiles a plan for each batch size in a configurable
// bucket list (default 1/2/4/8/16/32, D500_SERVE_BUCKETS): one forward-only
// PlanExecutor per bucket, each warmed at construction. A batch of k
// requests is padded up to the nearest bucket b >= k, executed through that
// bucket's zero-alloc inference_step(), and rows k..b-1 are sliced off
// before replies are written — so no warm request ever triggers a
// recompile or a heap allocation.
//
// Determinism contract: a served request's output is bitwise identical
// whether it ran solo or coalesced into any batch. This holds because the
// session serves eval-mode graphs whose per-row computation is independent
// of the other rows (Linear/MatMul/Conv compute each output row from its
// input row with a fixed-order reduction; Softmax, activations, pooling
// and eval-mode BatchNorm are row-local), and kernel work decomposition is
// a pure function of the problem shape, never of thread count. Padding
// rows are therefore free to carry stale payloads from earlier batches:
// their values never flow into real rows. tests/test_serving proves the
// contract; training-mode graphs (batch-coupled BatchNorm) are out of
// scope for serving.
//
// Thread compatibility: a session is single-owner (no internal locking).
// SessionPool (serve/pool) runs one session per worker thread. Kernels run
// serially inside each session (ExecOptions default) — serving parallelism
// comes from N sessions executing concurrently, which also keeps the
// zero-alloc and determinism guarantees independent of pool sizing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frameworks/plan_executor.hpp"
#include "graph/model.hpp"

namespace d500::serve {

/// Parses a D500_SERVE_BUCKETS-style comma list ("1,2,4,8") into a sorted,
/// deduplicated bucket list. Invalid or empty specs yield the default
/// 1/2/4/8/16/32 ladder; a leading 1 is enforced so solo requests always
/// have an exact plan.
std::vector<std::int64_t> parse_buckets(const std::string& spec);

class InferenceSession {
 public:
  /// Builds one forward-only executor per bucket from `model` (each gets
  /// its own Network instantiation, switched to eval mode) and warms every
  /// plan so the first real request runs on the hot path. The model must
  /// have exactly one graph input whose leading dimension is the batch
  /// axis; replies carry the model's first declared output.
  InferenceSession(const Model& model, std::vector<std::int64_t> buckets,
                   std::string name);

  /// Floats per request input/output row.
  std::int64_t input_elems() const { return input_elems_; }
  std::int64_t output_elems() const { return output_elems_; }
  std::int64_t max_batch() const { return buckets_.back(); }
  const std::vector<std::int64_t>& buckets() const { return buckets_; }
  const std::string& output_name() const { return output_name_; }

  /// Smallest precompiled bucket >= n (n must be in [1, max_batch()]).
  std::int64_t bucket_for(std::int64_t n) const;

  /// Executes `n` single-sample requests (1 <= n <= max_batch()) as one
  /// padded batch: copies each request's input into a row of the bucket's
  /// persistent feed tensor, runs the precompiled plan, copies each output
  /// row back into the request's reply buffer, stamps done_ns and releases
  /// the done flag. Warm calls perform zero heap allocations.
  ///
  /// `reqs` entries must outlive the call and carry input/output buffers
  /// of input_elems()/output_elems() floats.
  struct Request;
  void run_batch(Request* const* reqs, std::int64_t n);

  /// Plan-cache observability: dispatches per bucket index (every launch
  /// is a hit on some bucket — misses cannot happen after construction,
  /// which is the point), total padding rows executed-and-discarded, and
  /// the compile count (one per bucket, at construction).
  std::int64_t dispatches(std::size_t bucket_index) const {
    return dispatches_[bucket_index];
  }
  std::int64_t padded_rows() const { return padded_rows_; }
  std::int64_t plans_compiled() const {
    return static_cast<std::int64_t>(buckets_.size());
  }

 private:
  std::vector<std::int64_t> buckets_;     // ascending, unique, >= 1
  std::string input_name_;
  std::string output_name_;
  std::int64_t input_elems_ = 0;
  std::int64_t output_elems_ = 0;
  // One compiled plan per bucket. The executor holds the Network; the feed
  // map holds the persistent [bucket, sample...] staging tensor requests
  // are copied into (unique_ptr keeps executor addresses stable — compiled
  // plans hold self-referential pointer tables).
  struct BucketPlan {
    std::int64_t batch = 0;
    std::unique_ptr<PlanExecutor> exec;
    TensorMap feeds;
  };
  std::vector<BucketPlan> plans_;
  std::vector<std::int64_t> dispatches_;
  std::int64_t padded_rows_ = 0;
};

/// One single-sample serving request. The client owns the payload buffers
/// and the request object; the session writes `output`, stamps `done_ns`,
/// and release-stores `done` (clients acquire-load it — SessionPool::wait
/// wraps that in a condition variable).
struct InferenceSession::Request {
  const float* input = nullptr;   // input_elems() floats
  float* output = nullptr;        // output_elems() floats, written before done
  std::int64_t arrival_ns = 0;    // stamped by SessionPool::submit
  std::int64_t done_ns = 0;       // stamped by the session at completion
  std::atomic<bool> done{false};
};

/// Steady-clock nanoseconds; the one time domain for arrival/done stamps.
std::int64_t serve_now_ns();

}  // namespace d500::serve
