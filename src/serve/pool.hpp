// SessionPool: N InferenceSessions pulling coalesced batches from one
// RequestQueue under a configurable dynamic-batching policy.
//
// The serving pipeline is: clients submit() single-sample Requests into a
// bounded MPMC ring; each pool worker thread owns one InferenceSession and
// repeatedly pops a batch according to the policy, pads it to the nearest
// plan bucket, and runs it. Workers are dedicated std::threads, not shared
// ThreadPool jobs: they block on the queue, which pool jobs must never do
// ("jobs never block on jobs" contract). Kernels run serially inside each
// session, so serving parallelism scales with the session count.
//
// Batching policies (D500_SERVE_POLICY):
//   none     — no coalescing: every request launches alone (the batch-1
//              baseline the SLO benchmark compares against).
//   fixed    — classic static batching: wait for a full D500_SERVE_MAX_BATCH
//              before launching; stragglers below a full batch only flush
//              at shutdown. Best throughput, unbounded tail latency.
//   deadline — launch at max batch OR when the oldest queued request has
//              waited D500_SERVE_DEADLINE_US, whichever comes first: the
//              latency bound production batchers give.
//   adaptive — deadline policy whose launch threshold tracks observed load
//              (AdaptiveBatcher): the target widens while launches leave a
//              backlog behind (demand exceeds the current batch) and
//              narrows when deadline-expiry launches go out well under
//              target (demand fell). At low rate it behaves like `none`
//              (target 1, no added wait); under load like `fixed` with the
//              deadline as a hard latency backstop.
//
// Shutdown drains: close() rejects new submissions, workers flush every
// accepted request (partial batches included), then exit. Every accepted
// request is therefore always completed — wait() cannot hang.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/session.hpp"

namespace d500 {
class Counter;
class Gauge;
class Histogram;
}  // namespace d500

namespace d500::serve {

enum class Policy { kNone, kFixed, kDeadline, kAdaptive };

/// Parses "none" | "fixed" | "deadline" | "adaptive" (D500_SERVE_POLICY);
/// unknown strings fall back to kAdaptive.
Policy policy_from_string(const std::string& s);
const char* policy_name(Policy p);

/// Load-tracking launch-threshold controller for Policy::kAdaptive.
/// Thread-compatible: SessionPool serializes calls under its policy mutex.
class AdaptiveBatcher {
 public:
  explicit AdaptiveBatcher(std::int64_t max_batch)
      : max_(max_batch < 1 ? 1 : max_batch) {}

  std::int64_t target() const { return target_; }

  /// One observation per launch: `launched` requests went out, `backlog`
  /// remained queued afterwards, `expired` says the launch fired on
  /// deadline expiry rather than a filled target. Backlog at or above the
  /// target means demand outruns the current batch — double the target;
  /// an expiry launch at under half the target means demand fell — halve.
  void observe(std::int64_t launched, std::int64_t backlog, bool expired) {
    if (backlog >= target_) {
      target_ = std::min(target_ * 2, max_);
    } else if (expired && launched * 2 <= target_) {
      target_ = std::max(target_ / 2, std::int64_t{1});
    }
  }

 private:
  std::int64_t max_;
  std::int64_t target_ = 1;
};

/// Bounded MPMC queue of borrowed Request pointers (fixed ring, no
/// allocation after construction). push() blocks while full (backpressure);
/// pop_batch() blocks until a policy launch condition holds.
class RequestQueue {
 public:
  using Request = InferenceSession::Request;

  explicit RequestQueue(std::size_t capacity);

  /// False once closed (the request was NOT accepted and will never
  /// complete); otherwise blocks while the ring is full, then enqueues.
  bool push(Request* r);

  /// Dequeues up to `max_n` requests into `out`. Blocks until `target`
  /// requests are queued, the oldest queued request is older than
  /// `deadline_ns` (sets *expired), or the queue is closed (flushes what
  /// remains). Returns 0 only when closed and drained.
  std::size_t pop_batch(Request** out, std::int64_t max_n, std::int64_t target,
                        std::int64_t deadline_ns, bool* expired);

  /// Rejects further pushes and wakes every waiter; pop_batch keeps
  /// returning batches until the ring is empty.
  void close();

  std::int64_t depth() const;
  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<Request*> ring_;
  std::size_t head_ = 0;   // oldest element
  std::size_t count_ = 0;
  bool closed_ = false;
};

struct PoolOptions {
  int sessions = 2;
  Policy policy = Policy::kAdaptive;
  std::int64_t max_batch = 32;          // clamped to the largest bucket
  std::int64_t deadline_us = 2000;
  std::vector<std::int64_t> buckets;    // empty -> parse_buckets default
  std::size_t queue_capacity = 1 << 16;

  /// Defaults resolved from the D500_SERVE_* environment knobs.
  static PoolOptions from_env();
};

class SessionPool {
 public:
  using Request = InferenceSession::Request;

  /// Builds `opts.sessions` InferenceSessions (each precompiling every
  /// bucket) but spawns no threads until start().
  SessionPool(const Model& model, PoolOptions opts);
  ~SessionPool();  // shutdown()

  void start();

  /// Stamps arrival_ns and enqueues. False when the pool is shut down (the
  /// request was not accepted). Blocks while the queue is full.
  bool submit(Request* r);

  /// Blocks until the request completes. Only valid for accepted requests.
  void wait(const Request& r) const;

  /// Closes the queue, drains every accepted request, joins the workers.
  /// Idempotent.
  void shutdown();

  std::int64_t input_elems() const { return sessions_[0]->input_elems(); }
  std::int64_t output_elems() const { return sessions_[0]->output_elems(); }
  const PoolOptions& options() const { return opts_; }
  std::size_t session_count() const { return sessions_.size(); }
  const InferenceSession& session(std::size_t i) const {
    return *sessions_[i];
  }
  std::int64_t queue_depth() const { return queue_.depth(); }

  /// Aggregate launch bookkeeping (atomics; exact once workers quiesce).
  struct Stats {
    std::int64_t requests = 0;
    std::int64_t batches = 0;
    std::int64_t padded_rows = 0;
    std::int64_t deadline_launches = 0;  // launched on expiry or close
    std::int64_t max_batch_launched = 0;
    double mean_batch() const {
      return batches > 0 ? static_cast<double>(requests) /
                               static_cast<double>(batches)
                         : 0.0;
    }
  };
  Stats stats() const;

 private:
  void worker(std::size_t idx);

  PoolOptions opts_;
  std::vector<std::unique_ptr<InferenceSession>> sessions_;
  RequestQueue queue_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  std::atomic<bool> closed_{false};

  std::mutex policy_mu_;  // guards batcher_
  AdaptiveBatcher batcher_;

  mutable std::mutex done_mu_;
  mutable std::condition_variable done_cv_;

  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> deadline_launches_{0};
  std::atomic<std::int64_t> max_batch_launched_{0};

  // Metrics sites resolved once at construction (compile-resolved pattern):
  // per-request latency, per-launch batch size, live queue depth.
  Histogram* lat_hist_ = nullptr;
  Histogram* batch_hist_ = nullptr;
  Gauge* depth_gauge_ = nullptr;
  Counter* req_counter_ = nullptr;
};

}  // namespace d500::serve
