#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "core/error.hpp"
#include "graph/visitor.hpp"

namespace d500::serve {

std::int64_t serve_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::int64_t> parse_buckets(const std::string& spec) {
  std::vector<std::int64_t> out;
  const char* p = spec.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long long v = std::strtoll(p, &end, 10);
    if (end == p) break;  // not a number: reject the whole spec
    if (v > 0) out.push_back(v);
    p = end;
    while (*p == ',' || *p == ' ') ++p;
  }
  if (*p != '\0' || out.empty()) out = {1, 2, 4, 8, 16, 32};
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.front() != 1) out.insert(out.begin(), 1);
  return out;
}

InferenceSession::InferenceSession(const Model& model,
                                   std::vector<std::int64_t> buckets,
                                   std::string name)
    : buckets_(std::move(buckets)) {
  D500_CHECK_MSG(!buckets_.empty() && buckets_.front() >= 1,
                 "serve: empty bucket list");
  D500_CHECK_MSG(model.graph_inputs.size() == 1,
                 "serve: model must have exactly one graph input, got "
                     << model.graph_inputs.size());
  D500_CHECK_MSG(!model.graph_outputs.empty(),
                 "serve: model declares no outputs");
  input_name_ = model.graph_inputs.front();
  output_name_ = model.graph_outputs.front();

  const Shape& declared = model.input_shapes.at(input_name_);
  D500_CHECK_MSG(declared.size() >= 1,
                 "serve: input '" << input_name_ << "' has no batch axis");
  Shape sample(declared.begin() + 1, declared.end());
  input_elems_ = 1;
  for (const std::int64_t d : sample) input_elems_ *= d;

  dispatches_.assign(buckets_.size(), 0);
  plans_.reserve(buckets_.size());
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    BucketPlan plan;
    plan.batch = buckets_[bi];
    Shape batched{plan.batch};
    batched.insert(batched.end(), sample.begin(), sample.end());
    plan.feeds[input_name_] = Tensor(batched);
    // Each bucket instantiates its own Network from the shared Model (same
    // initialized weights, fresh operator instances): PlanExecutor caches
    // one compiled plan per executor, so one executor per bucket IS the
    // plan cache. Eval mode pins the row-independence the determinism
    // contract needs (BatchNorm uses stored stats, Dropout is identity).
    Network net = build_network(model);
    net.set_training(false);
    plan.exec = std::make_unique<PlanExecutor>(
        std::move(net), name + "#b" + std::to_string(plan.batch),
        ExecOptions{});
    // Compile + warm now: two steps so every lazily-created buffer (first
    // touch, histogram shards for this thread) exists before real traffic.
    plan.exec->inference_step(plan.feeds);
    const TensorMap& out = plan.exec->inference_step(plan.feeds);
    auto oit = out.find(output_name_);
    D500_CHECK_MSG(oit != out.end(),
                   "serve: output '" << output_name_ << "' not produced");
    const Shape& oshape = oit->second.shape();
    D500_CHECK_MSG(!oshape.empty() && oshape[0] == plan.batch,
                   "serve: output '" << output_name_
                       << "' does not carry the batch axis");
    const std::int64_t row = oit->second.elements() / plan.batch;
    if (bi == 0) {
      output_elems_ = row;
    } else {
      D500_CHECK_MSG(row == output_elems_,
                     "serve: output row size varies across buckets");
    }
    plans_.push_back(std::move(plan));
  }
}

std::int64_t InferenceSession::bucket_for(std::int64_t n) const {
  D500_CHECK_MSG(n >= 1 && n <= buckets_.back(),
                 "serve: batch " << n << " outside bucket range [1, "
                                 << buckets_.back() << "]");
  const auto it = std::lower_bound(buckets_.begin(), buckets_.end(), n);
  return *it;
}

void InferenceSession::run_batch(Request* const* reqs, std::int64_t n) {
  const std::int64_t bucket = bucket_for(n);
  const auto bi = static_cast<std::size_t>(
      std::lower_bound(buckets_.begin(), buckets_.end(), bucket) -
      buckets_.begin());
  BucketPlan& plan = plans_[bi];
  ++dispatches_[bi];
  padded_rows_ += bucket - n;

  // Stage request rows into the persistent feed tensor. Rows n..bucket-1
  // keep whatever a previous batch left there: row independence (header
  // contract) makes padding content irrelevant to the real rows.
  Tensor& feed = plan.feeds[input_name_];
  float* dst = feed.data();
  const std::size_t row_bytes = static_cast<std::size_t>(input_elems_) * 4;
  for (std::int64_t i = 0; i < n; ++i)
    std::memcpy(dst + i * input_elems_, reqs[i]->input, row_bytes);

  const TensorMap& out = plan.exec->inference_step(plan.feeds);

  // Slice replies: real rows only, padding rows are discarded here.
  const float* src = out.at(output_name_).data();
  const std::size_t out_bytes = static_cast<std::size_t>(output_elems_) * 4;
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(reqs[i]->output, src + i * output_elems_, out_bytes);
    reqs[i]->done_ns = serve_now_ns();
    reqs[i]->done.store(true, std::memory_order_release);
  }
}

}  // namespace d500::serve
