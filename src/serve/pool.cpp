#include "serve/pool.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/metrics_registry.hpp"

namespace d500::serve {

namespace {

// "No deadline" sentinel: far enough out that arrival_ns + it never fires,
// small enough that the sum cannot overflow int64.
constexpr std::int64_t kNoDeadlineNs =
    std::numeric_limits<std::int64_t>::max() / 4;

std::chrono::steady_clock::time_point to_time_point(std::int64_t ns) {
  return std::chrono::steady_clock::time_point(std::chrono::nanoseconds(ns));
}

}  // namespace

Policy policy_from_string(const std::string& s) {
  if (s == "none") return Policy::kNone;
  if (s == "fixed") return Policy::kFixed;
  if (s == "deadline") return Policy::kDeadline;
  return Policy::kAdaptive;
}

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kNone: return "none";
    case Policy::kFixed: return "fixed";
    case Policy::kDeadline: return "deadline";
    case Policy::kAdaptive: return "adaptive";
  }
  return "adaptive";
}

RequestQueue::RequestQueue(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity, nullptr) {}

bool RequestQueue::push(Request* r) {
  std::unique_lock<std::mutex> lk(mu_);
  not_full_.wait(lk, [&] { return closed_ || count_ < ring_.size(); });
  if (closed_) return false;
  ring_[(head_ + count_) % ring_.size()] = r;
  ++count_;
  not_empty_.notify_one();
  return true;
}

std::size_t RequestQueue::pop_batch(Request** out, std::int64_t max_n,
                                    std::int64_t target,
                                    std::int64_t deadline_ns, bool* expired) {
  if (target < 1) target = 1;
  *expired = false;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (closed_ || count_ >= static_cast<std::size_t>(target)) break;
    if (count_ > 0) {
      const std::int64_t oldest_dl = ring_[head_]->arrival_ns + deadline_ns;
      if (serve_now_ns() >= oldest_dl) {
        *expired = true;
        break;
      }
      not_empty_.wait_until(lk, to_time_point(oldest_dl));
    } else {
      not_empty_.wait(lk);
    }
  }
  std::size_t n = std::min(count_, static_cast<std::size_t>(max_n));
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
  }
  count_ -= n;
  if (n > 0) not_full_.notify_all();
  return n;  // 0 only when closed and drained
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::int64_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(count_);
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

PoolOptions PoolOptions::from_env() {
  PoolOptions o;
  o.sessions = serve_sessions_setting();
  o.policy = policy_from_string(serve_policy_setting());
  o.max_batch = serve_max_batch();
  o.deadline_us = serve_deadline_us();
  o.buckets = parse_buckets(serve_buckets_setting());
  return o;
}

SessionPool::SessionPool(const Model& model, PoolOptions opts)
    : opts_(std::move(opts)),
      queue_(opts_.queue_capacity),
      batcher_(1) {
  D500_CHECK_MSG(opts_.sessions >= 1, "serve: pool needs >= 1 session");
  if (opts_.buckets.empty()) opts_.buckets = parse_buckets("");
  for (int i = 0; i < opts_.sessions; ++i) {
    sessions_.push_back(std::make_unique<InferenceSession>(
        model, opts_.buckets, "serve.s" + std::to_string(i)));
  }
  opts_.max_batch =
      std::clamp<std::int64_t>(opts_.max_batch, 1, sessions_[0]->max_batch());
  batcher_ = AdaptiveBatcher(opts_.max_batch);

  auto& reg = MetricsRegistry::instance();
  lat_hist_ = &reg.histogram("serve.request_latency_ns");
  batch_hist_ = &reg.histogram("serve.batch_size", "requests");
  depth_gauge_ = &reg.gauge("serve.queue_depth");
  req_counter_ = &reg.counter("serve.requests");
}

SessionPool::~SessionPool() { shutdown(); }

void SessionPool::start() {
  D500_CHECK_MSG(!started_, "serve: pool already started");
  started_ = true;
  threads_.reserve(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i)
    threads_.emplace_back([this, i] { worker(i); });
}

bool SessionPool::submit(Request* r) {
  if (closed_.load(std::memory_order_acquire)) return false;
  r->arrival_ns = serve_now_ns();
  if (!queue_.push(r)) return false;
  req_counter_->add();
  depth_gauge_->set(static_cast<double>(queue_.depth()));
  return true;
}

void SessionPool::wait(const Request& r) const {
  if (r.done.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [&] { return r.done.load(std::memory_order_acquire); });
}

void SessionPool::shutdown() {
  closed_.store(true, std::memory_order_release);
  queue_.close();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

SessionPool::Stats SessionPool::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.deadline_launches = deadline_launches_.load(std::memory_order_relaxed);
  s.max_batch_launched = max_batch_launched_.load(std::memory_order_relaxed);
  for (const auto& sess : sessions_) s.padded_rows += sess->padded_rows();
  return s;
}

void SessionPool::worker(std::size_t idx) {
  InferenceSession& sess = *sessions_[idx];
  const std::int64_t deadline_ns = opts_.deadline_us * 1000;
  std::vector<Request*> buf(static_cast<std::size_t>(opts_.max_batch));

  for (;;) {
    std::int64_t target = 1;
    std::int64_t max_n = opts_.max_batch;
    std::int64_t dl = kNoDeadlineNs;
    switch (opts_.policy) {
      case Policy::kNone:
        max_n = 1;  // target 1, no deadline: every request launches alone
        break;
      case Policy::kFixed:
        target = opts_.max_batch;  // full batches only (flush at close)
        break;
      case Policy::kDeadline:
        target = opts_.max_batch;
        dl = deadline_ns;
        break;
      case Policy::kAdaptive: {
        std::lock_guard<std::mutex> lk(policy_mu_);
        target = batcher_.target();
        dl = deadline_ns;
        break;
      }
    }

    bool expired = false;
    const std::size_t n =
        queue_.pop_batch(buf.data(), max_n, target, dl, &expired);
    if (n == 0) break;  // closed and drained

    sess.run_batch(buf.data(), static_cast<std::int64_t>(n));

    const std::int64_t launched = static_cast<std::int64_t>(n);
    requests_.fetch_add(launched, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (expired || launched < target)
      deadline_launches_.fetch_add(1, std::memory_order_relaxed);
    std::int64_t seen = max_batch_launched_.load(std::memory_order_relaxed);
    while (launched > seen &&
           !max_batch_launched_.compare_exchange_weak(
               seen, launched, std::memory_order_relaxed)) {
    }

    const std::int64_t backlog = queue_.depth();
    if (opts_.policy == Policy::kAdaptive) {
      std::lock_guard<std::mutex> lk(policy_mu_);
      batcher_.observe(launched, backlog, expired);
    }

    batch_hist_->record(static_cast<double>(launched));
    depth_gauge_->set(static_cast<double>(backlog));
    for (std::size_t i = 0; i < n; ++i)
      lat_hist_->record(static_cast<double>(buf[i]->done_ns -
                                            buf[i]->arrival_ns));

    // Publish completions to waiters. Taking the lock (not just notifying)
    // closes the race where a waiter checks `done`, sees false, and blocks
    // after our notify flew past it.
    { std::lock_guard<std::mutex> lk(done_mu_); }
    done_cv_.notify_all();
  }
}

}  // namespace d500::serve
