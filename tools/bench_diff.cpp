// bench_diff: compares two BenchReport JSON files and gates on regressions.
//
//   bench_diff old.json new.json [--rel-tol 0.02] [--scalar-tol 0.10]
//              [--direction metric=lower|higher|none]...
//
// --direction overrides the improvement direction stamped in the report
// for one metric (repeatable). Latency percentiles are lower-is-better,
// throughput is higher-is-better; the flag lets the CI gate apply the
// §V-B overlap criterion in the right direction for both shapes in
// BENCH_serving.json, or mute a metric entirely with `=none`.
//
// Exit codes: 0 = no regression, 1 = at least one metric regressed by the
// paper's §V-B criterion (worse median, disjoint 95% CIs, beyond
// tolerance), 2 = usage or parse error. The ci-bench-smoke workflow runs
// this against committed baseline reports.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "core/json.hpp"
#include "core/report.hpp"

namespace {

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff old.json new.json"
               " [--rel-tol F] [--scalar-tol F]"
               " [--direction metric=lower|higher|none]...\n");
  return 2;
}

/// Parses "metric=lower|higher|none" into a direction override.
bool parse_direction(const char* arg,
                     std::pair<std::string, d500::Better>* out) {
  const char* eq = std::strchr(arg, '=');
  if (eq == nullptr || eq == arg) return false;
  const std::string dir(eq + 1);
  if (dir == "lower") {
    out->second = d500::Better::kLower;
  } else if (dir == "higher") {
    out->second = d500::Better::kHigher;
  } else if (dir == "none") {
    out->second = d500::Better::kNone;
  } else {
    return false;
  }
  out->first.assign(arg, eq - arg);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  d500::ReportDiffOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rel-tol") == 0 && i + 1 < argc) {
      opts.rel_tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--scalar-tol") == 0 && i + 1 < argc) {
      opts.scalar_tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--direction") == 0 && i + 1 < argc) {
      std::pair<std::string, d500::Better> dir;
      if (!parse_direction(argv[++i], &dir)) return usage();
      opts.direction.push_back(std::move(dir));
    } else if (old_path == nullptr) {
      old_path = argv[i];
    } else if (new_path == nullptr) {
      new_path = argv[i];
    } else {
      return usage();
    }
  }
  if (old_path == nullptr || new_path == nullptr) return usage();

  std::string old_text, new_text, err;
  if (!read_file(old_path, &old_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", old_path);
    return 2;
  }
  if (!read_file(new_path, &new_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", new_path);
    return 2;
  }
  const d500::Json old_report = d500::Json::parse(old_text, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", old_path, err.c_str());
    return 2;
  }
  const d500::Json new_report = d500::Json::parse(new_text, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", new_path, err.c_str());
    return 2;
  }

  const d500::ReportDiff diff =
      d500::diff_reports(old_report, new_report, opts);
  std::printf("comparing %s (%s @ %s)\n       vs %s (%s @ %s)\n\n", old_path,
              old_report.str_or("bench", "?").c_str(),
              old_report.find("provenance") != nullptr
                  ? old_report.find("provenance")->str_or("git_sha", "?").c_str()
                  : "?",
              new_path, new_report.str_or("bench", "?").c_str(),
              new_report.find("provenance") != nullptr
                  ? new_report.find("provenance")->str_or("git_sha", "?").c_str()
                  : "?");
  std::printf("%s", diff.to_text().c_str());
  if (!diff.comparable) return 2;
  return diff.regressions > 0 ? 1 : 0;
}
